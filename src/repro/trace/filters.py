"""Trace transformations: filtering, relocation, concatenation.

All transforms are vectorized over the columnar representation and
preserve every column (sizes included); none materializes per-access
Python objects.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mem.address import AddressRange
from repro.trace.columnar import NO_VARIABLE
from repro.trace.trace import Trace


def filter_by_variable(trace: Trace, variables: Sequence[str]) -> Trace:
    """Keep only accesses belonging to the named variables.

    Gaps of dropped accesses are folded into the following kept access,
    so the instruction count attributable to the kept accesses is
    preserved as closely as possible.
    """
    wanted_ids = {
        trace.variable_names.index(name)
        for name in variables
        if name in trace.variable_names
    }
    keep = np.isin(trace.variable_ids, list(wanted_ids))
    return _apply_keep_mask(trace, keep, f"{trace.name}|vars")


def filter_by_range(trace: Trace, address_range: AddressRange) -> Trace:
    """Keep only accesses whose address falls inside ``address_range``."""
    keep = (trace.addresses >= address_range.base) & (
        trace.addresses < address_range.end
    )
    return _apply_keep_mask(trace, keep, f"{trace.name}|range")


def _apply_keep_mask(trace: Trace, keep: np.ndarray, name: str) -> Trace:
    """Select accesses by boolean mask, folding dropped gaps forward."""
    if keep.all():
        return trace
    # Each dropped access contributes its gap + 1 instructions to the
    # next kept access's gap: the carry a kept access absorbs is the
    # dropped-instruction total accumulated since the previous kept
    # access — a first difference of the cumulative drop curve.
    dropped_instructions = np.where(keep, 0, trace.gaps + 1)
    carried = np.cumsum(dropped_instructions)
    kept_positions = np.flatnonzero(keep)
    carry_before = np.where(
        kept_positions > 0, carried[kept_positions - 1], 0
    )
    new_gaps = trace.gaps[kept_positions] + carry_before
    new_gaps[1:] -= carry_before[:-1]
    return Trace(
        trace.addresses[kept_positions],
        trace.writes[kept_positions],
        new_gaps,
        trace.variable_ids[kept_positions],
        trace.variable_names,
        name=name,
        sizes=trace.sizes[kept_positions],
    )


def relocate(trace: Trace, offset: int, name: str | None = None) -> Trace:
    """Shift every address by ``offset`` bytes.

    Used to place several jobs' traces in disjoint address spaces for
    the multitasking experiment.
    """
    addresses = trace.addresses + offset
    if (addresses < 0).any():
        raise ValueError("relocation would produce negative addresses")
    return Trace(
        addresses,
        trace.writes,
        trace.gaps,
        trace.variable_ids,
        trace.variable_names,
        name=name or f"{trace.name}+{offset:#x}",
        sizes=trace.sizes,
    )


def concatenate(traces: Sequence[Trace], name: str = "concat") -> Trace:
    """Join traces end to end (variable tables are merged by name)."""
    if not traces:
        return Trace.empty(name)
    merged_names: list[str] = []
    name_ids: dict[str, int] = {}
    remapped_ids = []
    for trace in traces:
        # local id -> merged id, gathered through a small table so the
        # per-access column is remapped in one vectorized step.
        table = np.full(
            len(trace.variable_names) + 1, NO_VARIABLE, dtype=np.int64
        )
        for local_id, variable in enumerate(trace.variable_names):
            if variable not in name_ids:
                name_ids[variable] = len(merged_names)
                merged_names.append(variable)
            table[local_id] = name_ids[variable]
        remapped_ids.append(table[trace.variable_ids])

    return Trace(
        np.concatenate([trace.addresses for trace in traces]),
        np.concatenate([trace.writes for trace in traces]),
        np.concatenate([trace.gaps for trace in traces]),
        np.concatenate(remapped_ids),
        merged_names,
        name=name,
        sizes=np.concatenate([trace.sizes for trace in traces]),
    )

"""Trace transformations: filtering, relocation, concatenation."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mem.address import AddressRange
from repro.trace.trace import Trace


def filter_by_variable(trace: Trace, variables: Sequence[str]) -> Trace:
    """Keep only accesses belonging to the named variables.

    Gaps of dropped accesses are folded into the following kept access,
    so the instruction count attributable to the kept accesses is
    preserved as closely as possible.
    """
    wanted_ids = {
        trace.variable_names.index(name)
        for name in variables
        if name in trace.variable_names
    }
    keep = np.isin(trace.variable_ids, list(wanted_ids))
    return _apply_keep_mask(trace, keep, f"{trace.name}|vars")


def filter_by_range(trace: Trace, address_range: AddressRange) -> Trace:
    """Keep only accesses whose address falls inside ``address_range``."""
    keep = (trace.addresses >= address_range.base) & (
        trace.addresses < address_range.end
    )
    return _apply_keep_mask(trace, keep, f"{trace.name}|range")


def _apply_keep_mask(trace: Trace, keep: np.ndarray, name: str) -> Trace:
    """Select accesses by boolean mask, folding dropped gaps forward."""
    if keep.all():
        return trace
    # Each dropped access contributes its gap + 1 instructions to the
    # next kept access's gap.
    dropped_instructions = np.where(keep, 0, trace.gaps + 1)
    carried = np.cumsum(dropped_instructions)
    kept_positions = np.flatnonzero(keep)
    new_gaps = trace.gaps[kept_positions].copy()
    previous_carry = 0
    for output_index, position in enumerate(kept_positions):
        carry_here = int(carried[position - 1]) if position > 0 else 0
        new_gaps[output_index] += carry_here - previous_carry
        previous_carry = carry_here
    return Trace(
        trace.addresses[kept_positions],
        trace.writes[kept_positions],
        new_gaps,
        trace.variable_ids[kept_positions],
        trace.variable_names,
        name=name,
    )


def relocate(trace: Trace, offset: int, name: str | None = None) -> Trace:
    """Shift every address by ``offset`` bytes.

    Used to place several jobs' traces in disjoint address spaces for
    the multitasking experiment.
    """
    addresses = trace.addresses + offset
    if (addresses < 0).any():
        raise ValueError("relocation would produce negative addresses")
    return Trace(
        addresses,
        trace.writes,
        trace.gaps,
        trace.variable_ids,
        trace.variable_names,
        name=name or f"{trace.name}+{offset:#x}",
    )


def concatenate(traces: Sequence[Trace], name: str = "concat") -> Trace:
    """Join traces end to end (variable tables are merged by name)."""
    if not traces:
        return Trace.empty(name)
    merged_names: list[str] = []
    name_ids: dict[str, int] = {}
    id_maps = []
    for trace in traces:
        id_map = {}
        for local_id, variable in enumerate(trace.variable_names):
            if variable not in name_ids:
                name_ids[variable] = len(merged_names)
                merged_names.append(variable)
            id_map[local_id] = name_ids[variable]
        id_maps.append(id_map)

    def remap(trace: Trace, id_map: dict[int, int]) -> np.ndarray:
        ids = trace.variable_ids.copy()
        for local_id, global_id in id_map.items():
            ids[trace.variable_ids == local_id] = global_id
        return ids

    return Trace(
        np.concatenate([trace.addresses for trace in traces]),
        np.concatenate([trace.writes for trace in traces]),
        np.concatenate([trace.gaps for trace in traces]),
        np.concatenate(
            [remap(trace, id_map) for trace, id_map in zip(traces, id_maps)]
        ),
        merged_names,
        name=name,
    )

"""Deprecated entry point: ``python -m repro.trace``.

Kept as a shim for existing scripts; use ``repro trace ...`` (or the
``repro-trace`` console script) instead.
"""

import sys
import warnings

from repro.trace.cli import main

warnings.warn(
    "`python -m repro.trace` is deprecated; use `repro trace ...`",
    DeprecationWarning,
    stacklevel=1,
)
sys.exit(main(prog="python -m repro.trace"))

"""``python -m repro.trace`` forwards to the trace CLI."""

import sys

from repro.trace.cli import main

sys.exit(main())

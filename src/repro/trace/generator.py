"""Synthetic access-pattern generators.

These produce the classic locality archetypes (streams, strides, hot
working sets, Zipf mixes, pointer chases) used by unit tests, the
ablation benches, and microbenchmark examples.  All generators are
deterministic given their seed, and all build their traces as whole
columns (:meth:`~repro.trace.columnar.ColumnarTrace.from_columns`) —
no per-access Python objects, so million-access synthetic traces are
numpy-speed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.trace.trace import Trace


def sequential_stream(
    base: int,
    count: int,
    element_size: int = 2,
    variable: Optional[str] = "stream",
    writes: bool = False,
    name: str = "sequential",
) -> Trace:
    """``count`` consecutive element accesses starting at ``base``."""
    addresses = base + np.arange(count, dtype=np.int64) * element_size
    return Trace.from_columns(
        addresses,
        writes=writes,
        variable=variable,
        sizes=np.full(count, element_size, dtype=np.int32),
        name=name,
    )


def strided_stream(
    base: int,
    count: int,
    stride: int,
    variable: Optional[str] = "strided",
    name: str = "strided",
) -> Trace:
    """``count`` accesses separated by ``stride`` bytes."""
    addresses = base + np.arange(count, dtype=np.int64) * stride
    return Trace.from_columns(
        addresses, variable=variable, name=name
    )


def looped_working_set(
    base: int,
    working_set_bytes: int,
    passes: int,
    element_size: int = 2,
    variable: Optional[str] = "hot",
    name: str = "looped",
) -> Trace:
    """Repeated sequential sweeps over a fixed working set.

    The canonical temporal-locality pattern: fits-in-cache working sets
    approach 100% hits after the first pass; oversized ones thrash LRU.
    """
    elements = working_set_bytes // element_size
    one_pass = base + np.arange(elements, dtype=np.int64) * element_size
    addresses = np.tile(one_pass, passes)
    return Trace.from_columns(
        addresses,
        variable=variable,
        sizes=np.full(len(addresses), element_size, dtype=np.int32),
        name=name,
    )


def random_uniform(
    base: int,
    span_bytes: int,
    count: int,
    element_size: int = 2,
    seed: int = 0,
    write_fraction: float = 0.0,
    variable: Optional[str] = "random",
    name: str = "random",
) -> Trace:
    """Uniform random accesses over ``[base, base + span_bytes)``."""
    rng = np.random.default_rng(seed)
    elements = max(span_bytes // element_size, 1)
    indices = rng.integers(0, elements, size=count)
    write_flags = rng.random(count) < write_fraction
    return Trace.from_columns(
        base + indices.astype(np.int64) * element_size,
        writes=write_flags,
        variable=variable,
        sizes=np.full(count, element_size, dtype=np.int32),
        name=name,
    )


def zipf_accesses(
    base: int,
    span_bytes: int,
    count: int,
    element_size: int = 2,
    exponent: float = 1.2,
    seed: int = 0,
    variable: Optional[str] = "zipf",
    name: str = "zipf",
) -> Trace:
    """Zipf-distributed accesses: a few hot lines, a long cold tail."""
    if exponent <= 1.0:
        raise ValueError(f"zipf exponent must exceed 1.0, got {exponent}")
    rng = np.random.default_rng(seed)
    elements = max(span_bytes // element_size, 1)
    ranks = rng.zipf(exponent, size=count)
    indices = (ranks - 1) % elements
    return Trace.from_columns(
        base + indices.astype(np.int64) * element_size,
        variable=variable,
        sizes=np.full(count, element_size, dtype=np.int32),
        name=name,
    )


def pointer_chase(
    base: int,
    node_count: int,
    hops: int,
    node_size: int = 16,
    seed: int = 0,
    variable: Optional[str] = "list",
    name: str = "pointer_chase",
) -> Trace:
    """A random-permutation linked-list walk (no spatial locality).

    The walk visits the permutation cycle containing node 0, so the
    ``hops``-long node sequence is the cycle tiled — computed by
    rolling the permutation order rather than chasing pointers one
    Python hop at a time.
    """
    rng = np.random.default_rng(seed)
    order = rng.permutation(node_count).astype(np.int64)
    # order[i] -> order[i+1] is the successor relation; starting from
    # order[0], the visit sequence is simply `order` tiled to length.
    repeats = -(-hops // node_count) if node_count else 0
    nodes = np.tile(order, max(repeats, 1))[:hops]
    return Trace.from_columns(
        base + nodes * node_size,
        variable=variable,
        sizes=np.full(hops, node_size, dtype=np.int32),
        name=name,
    )

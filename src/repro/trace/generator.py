"""Synthetic access-pattern generators.

These produce the classic locality archetypes (streams, strides, hot
working sets, Zipf mixes, pointer chases) used by unit tests, the
ablation benches, and microbenchmark examples.  All generators are
deterministic given their seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.trace.trace import Trace, TraceBuilder


def sequential_stream(
    base: int,
    count: int,
    element_size: int = 2,
    variable: Optional[str] = "stream",
    writes: bool = False,
    name: str = "sequential",
) -> Trace:
    """``count`` consecutive element accesses starting at ``base``."""
    builder = TraceBuilder(name=name)
    for index in range(count):
        builder.append(
            base + index * element_size, is_write=writes, variable=variable
        )
    return builder.build()


def strided_stream(
    base: int,
    count: int,
    stride: int,
    variable: Optional[str] = "strided",
    name: str = "strided",
) -> Trace:
    """``count`` accesses separated by ``stride`` bytes."""
    builder = TraceBuilder(name=name)
    for index in range(count):
        builder.append(base + index * stride, variable=variable)
    return builder.build()


def looped_working_set(
    base: int,
    working_set_bytes: int,
    passes: int,
    element_size: int = 2,
    variable: Optional[str] = "hot",
    name: str = "looped",
) -> Trace:
    """Repeated sequential sweeps over a fixed working set.

    The canonical temporal-locality pattern: fits-in-cache working sets
    approach 100% hits after the first pass; oversized ones thrash LRU.
    """
    builder = TraceBuilder(name=name)
    elements = working_set_bytes // element_size
    for _ in range(passes):
        for index in range(elements):
            builder.append(base + index * element_size, variable=variable)
    return builder.build()


def random_uniform(
    base: int,
    span_bytes: int,
    count: int,
    element_size: int = 2,
    seed: int = 0,
    write_fraction: float = 0.0,
    variable: Optional[str] = "random",
    name: str = "random",
) -> Trace:
    """Uniform random accesses over ``[base, base + span_bytes)``."""
    rng = np.random.default_rng(seed)
    elements = max(span_bytes // element_size, 1)
    indices = rng.integers(0, elements, size=count)
    write_flags = rng.random(count) < write_fraction
    builder = TraceBuilder(name=name)
    for index, is_write in zip(indices, write_flags):
        builder.append(
            base + int(index) * element_size,
            is_write=bool(is_write),
            variable=variable,
        )
    return builder.build()


def zipf_accesses(
    base: int,
    span_bytes: int,
    count: int,
    element_size: int = 2,
    exponent: float = 1.2,
    seed: int = 0,
    variable: Optional[str] = "zipf",
    name: str = "zipf",
) -> Trace:
    """Zipf-distributed accesses: a few hot lines, a long cold tail."""
    if exponent <= 1.0:
        raise ValueError(f"zipf exponent must exceed 1.0, got {exponent}")
    rng = np.random.default_rng(seed)
    elements = max(span_bytes // element_size, 1)
    ranks = rng.zipf(exponent, size=count)
    indices = (ranks - 1) % elements
    builder = TraceBuilder(name=name)
    for index in indices:
        builder.append(base + int(index) * element_size, variable=variable)
    return builder.build()


def pointer_chase(
    base: int,
    node_count: int,
    hops: int,
    node_size: int = 16,
    seed: int = 0,
    variable: Optional[str] = "list",
    name: str = "pointer_chase",
) -> Trace:
    """A random-permutation linked-list walk (no spatial locality)."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(node_count)
    next_of = np.empty(node_count, dtype=np.int64)
    for position in range(node_count):
        next_of[order[position]] = order[(position + 1) % node_count]
    builder = TraceBuilder(name=name)
    node = int(order[0])
    for _ in range(hops):
        builder.append(base + node * node_size, variable=variable)
        node = int(next_of[node])
    return builder.build()

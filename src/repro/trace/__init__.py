"""Trace infrastructure: memory-reference streams with variable labels.

A :class:`~repro.trace.trace.Trace` is the contract between the
workloads, the profiler and the simulators: a sequence of memory
accesses, each carrying

* a byte address,
* a read/write flag,
* the program variable it belongs to (for profiling/layout), and
* a *gap* — the number of non-memory instructions executed since the
  previous access (so CPI can be computed without modelling an ISA).

Traces are stored columnar
(:class:`~repro.trace.columnar.ColumnarTrace`: parallel numpy arrays,
with cached block-number and mask columns) so million-access traces
stay cheap; :class:`~repro.trace.columnar.ColumnarRecorder` is the
append-only constructor the instrumented workloads record into, and
:func:`~repro.trace.columnar.load_npz` /
:meth:`~repro.trace.columnar.ColumnarTrace.save_npz` are the on-disk
``.npz`` format (memory-mappable for streaming replay).
"""

from repro.trace.access import MemoryAccess
from repro.trace.columnar import (
    ColumnarRecorder,
    ColumnarTrace,
    load_npz,
    open_npz,
)
from repro.trace.dinero import load_trace, save_trace
from repro.trace.filters import (
    concatenate,
    filter_by_range,
    filter_by_variable,
    relocate,
)
from repro.trace.generator import (
    looped_working_set,
    pointer_chase,
    random_uniform,
    sequential_stream,
    strided_stream,
    zipf_accesses,
)
from repro.trace.trace import Trace, TraceBuilder

__all__ = [
    "ColumnarRecorder",
    "ColumnarTrace",
    "MemoryAccess",
    "Trace",
    "TraceBuilder",
    "load_npz",
    "open_npz",
    "concatenate",
    "filter_by_range",
    "filter_by_variable",
    "load_trace",
    "looped_working_set",
    "pointer_chase",
    "random_uniform",
    "relocate",
    "save_trace",
    "sequential_stream",
    "strided_stream",
    "zipf_accesses",
]

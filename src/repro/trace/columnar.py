"""The columnar trace: parallel arrays end to end, plus on-disk ``.npz``.

:class:`ColumnarTrace` is the canonical trace representation of the
whole stack: every access is a row across parallel numpy columns
(address, size, write flag, instruction gap, object id), and the
derived columns the simulators consume — block numbers per cache
geometry, per-access replacement masks, cumulative instruction counts
— are computed vectorized and cached on the trace, so no consumer ever
round-trips the stream through per-access Python objects.

Three ways in:

* :class:`ColumnarRecorder` — what instrumented workloads record into
  directly (chunked numpy buffers; scalar ``append`` for instrumented
  kernels, ``append_many``/``append_run`` for vectorizable patterns);
* :meth:`ColumnarTrace.from_columns` — wrap arrays you already have;
* :func:`load_npz` / :func:`open_npz` — the on-disk format (below).

On-disk format: a plain ``numpy.savez`` archive (uncompressed zip of
``.npy`` members) holding the five columns plus the variable-name
table.  Because members are stored uncompressed, :func:`load_npz` can
memory-map them in place (``mmap=True``): the loader parses the zip
local headers, finds each member's data offset, and hands the columns
to :class:`ColumnarTrace` as read-only ``np.memmap`` views — a
million-access trace replays with a file-cache-sized footprint.
:meth:`ColumnarTrace.iter_chunks` streams bounded windows off either
representation.
"""

from __future__ import annotations

import struct
import zipfile
from pathlib import Path
from typing import Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from repro.trace.access import MemoryAccess

#: ``variable_ids`` value for accesses with no known variable.
NO_VARIABLE = -1

#: On-disk format version written into every archive.
NPZ_FORMAT_VERSION = 1

_COLUMNS = ("addresses", "sizes", "writes", "gaps", "variable_ids")


class ColumnarTrace:
    """An immutable memory-reference trace stored as parallel arrays.

    Build with :class:`ColumnarRecorder` (preferred),
    :meth:`from_columns`, or :meth:`from_accesses`.

    Attributes:
        addresses: int64 array of byte addresses.
        sizes: int32 array of access widths in bytes.
        writes: bool array, True for stores.
        gaps: int64 array of non-memory instruction gaps.
        variable_ids: int64 object-id column (``NO_VARIABLE`` = none).
        variable_names: id -> name table for ``variable_ids``.
    """

    def __init__(
        self,
        addresses: np.ndarray,
        writes: np.ndarray,
        gaps: np.ndarray,
        variable_ids: np.ndarray,
        variable_names: list[str],
        name: str = "trace",
        sizes: Optional[np.ndarray] = None,
    ):
        length = len(addresses)
        if not (len(writes) == len(gaps) == len(variable_ids) == length):
            raise ValueError("trace arrays must have equal length")
        self.addresses = np.asarray(addresses, dtype=np.int64)
        self.writes = np.asarray(writes, dtype=bool)
        self.gaps = np.asarray(gaps, dtype=np.int64)
        self.variable_ids = np.asarray(variable_ids, dtype=np.int64)
        if sizes is None:
            self.sizes = np.ones(length, dtype=np.int32)
        else:
            if len(sizes) != length:
                raise ValueError("trace arrays must have equal length")
            self.sizes = np.asarray(sizes, dtype=np.int32)
        self.variable_names = list(variable_names)
        self.name = name
        # Derived-column caches (offset_bits -> blocks, cumulative
        # instruction counts).  Computed lazily, shared by every
        # consumer of this trace object.
        self._blocks: dict[int, np.ndarray] = {}
        self._cumulative: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        addresses: Sequence[int] | np.ndarray,
        writes: Optional[Sequence[bool] | np.ndarray] = None,
        gaps: Optional[Sequence[int] | np.ndarray] = None,
        variable: Optional[str] = None,
        variable_ids: Optional[np.ndarray] = None,
        variable_names: Optional[Sequence[str]] = None,
        sizes: Optional[Sequence[int] | np.ndarray] = None,
        name: str = "trace",
    ) -> "ColumnarTrace":
        """Build a trace directly from column arrays (all vectorized).

        ``variable`` labels every access with one name; pass
        ``variable_ids`` + ``variable_names`` instead for multi-variable
        columns.  Omitted columns default to reads / zero gaps / size 1.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        length = len(addresses)
        if writes is None:
            writes = np.zeros(length, dtype=bool)
        elif np.isscalar(writes):
            writes = np.full(length, bool(writes))
        if gaps is None:
            gaps = np.zeros(length, dtype=np.int64)
        if variable_ids is not None:
            names = list(variable_names or [])
        elif variable is not None:
            names = [variable]
            variable_ids = np.zeros(length, dtype=np.int64)
        else:
            names = []
            variable_ids = np.full(length, NO_VARIABLE, dtype=np.int64)
        return cls(
            addresses,
            np.asarray(writes, dtype=bool),
            np.asarray(gaps, dtype=np.int64),
            variable_ids,
            names,
            name=name,
            sizes=None if sizes is None else np.asarray(sizes),
        )

    @classmethod
    def from_accesses(
        cls, accesses: Sequence[MemoryAccess], name: str = "trace"
    ) -> "ColumnarTrace":
        """Build a trace from per-access records (legacy/slow path)."""
        from repro.trace.trace import TraceBuilder

        builder = TraceBuilder(name=name)
        for access in accesses:
            builder.add_gap(access.gap)
            builder.append(
                access.address,
                is_write=access.is_write,
                variable=access.variable,
            )
        return builder.build()

    @classmethod
    def empty(cls, name: str = "trace") -> "ColumnarTrace":
        """A zero-length trace."""
        zero = np.zeros(0, dtype=np.int64)
        return cls(zero, zero.astype(bool), zero, zero, [], name=name)

    # ------------------------------------------------------------------
    # Derived columns (cached, vectorized)
    # ------------------------------------------------------------------
    def blocks_for(
        self, offset_bits: int, address_offset: int = 0
    ) -> np.ndarray:
        """Block numbers (``address >> offset_bits``), cached.

        With ``address_offset == 0`` the returned array is the shared
        cached column — treat it as read-only.  A non-zero offset
        (disjoint per-job address spaces) reuses the cached column
        when the offset is block-aligned (one vectorized add), and
        falls back to a direct shift otherwise; either way the result
        is a fresh array the caller owns.
        """
        blocks = self._blocks.get(offset_bits)
        if blocks is None:
            blocks = np.ascontiguousarray(
                self.addresses >> np.int64(offset_bits), dtype=np.int64
            )
            self._blocks[offset_bits] = blocks
        if address_offset == 0:
            return blocks
        if address_offset % (1 << offset_bits) == 0:
            return blocks + np.int64(address_offset >> offset_bits)
        return np.ascontiguousarray(
            (self.addresses + np.int64(address_offset))
            >> np.int64(offset_bits),
            dtype=np.int64,
        )

    @property
    def cumulative_instructions(self) -> np.ndarray:
        """``cum[i]`` = instructions contributed by accesses 0..i.

        Cached; shared by the multitask schedulers and the fleet
        executor.  Treat as read-only.
        """
        if self._cumulative is None:
            self._cumulative = np.cumsum(self.gaps + 1, dtype=np.int64)
        return self._cumulative

    def mask_bits_for(
        self,
        variable_masks: Mapping[str, int],
        default: int,
    ) -> np.ndarray:
        """Per-access replacement-mask column from per-variable masks.

        Vectorized: a small id -> bits table gathered through the
        ``variable_ids`` column.  Unknown variables (and unlabelled
        accesses) get ``default``.
        """
        table = np.full(len(self.variable_names) + 1, default, dtype=np.int64)
        for index, variable in enumerate(self.variable_names):
            if variable in variable_masks:
                table[index] = int(variable_masks[variable])
        # NO_VARIABLE (-1) indexes the appended default slot.
        return table[self.variable_ids]

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def instruction_count(self) -> int:
        """Total instructions: one per access plus all gaps."""
        return int(len(self) + self.gaps.sum())

    @property
    def access_count(self) -> int:
        """Number of memory accesses."""
        return len(self)

    def variables(self) -> list[str]:
        """Names of all variables that appear in the trace."""
        used = set(int(i) for i in np.unique(self.variable_ids))
        used.discard(NO_VARIABLE)
        return [self.variable_names[i] for i in sorted(used)]

    def variable_of(self, position: int) -> Optional[str]:
        """Variable name at trace position, or None."""
        identifier = int(self.variable_ids[position])
        if identifier == NO_VARIABLE:
            return None
        return self.variable_names[identifier]

    def access_at(self, position: int) -> MemoryAccess:
        """The access record at ``position`` (inspection/debug only)."""
        return MemoryAccess(
            address=int(self.addresses[position]),
            is_write=bool(self.writes[position]),
            variable=self.variable_of(position),
            gap=int(self.gaps[position]),
        )

    def positions_of(self, variable: str) -> np.ndarray:
        """Trace positions whose access belongs to ``variable``."""
        try:
            identifier = self.variable_names.index(variable)
        except ValueError:
            return np.empty(0, dtype=np.int64)
        return np.flatnonzero(self.variable_ids == identifier)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def slice(
        self, start: int, stop: int, name: Optional[str] = None
    ) -> "ColumnarTrace":
        """A sub-trace of positions ``[start, stop)`` (array views)."""
        piece = ColumnarTrace(
            self.addresses[start:stop],
            self.writes[start:stop],
            self.gaps[start:stop],
            self.variable_ids[start:stop],
            self.variable_names,
            name=name or f"{self.name}[{start}:{stop}]",
            sizes=self.sizes[start:stop],
        )
        # Windowed consumers slice traces constantly; hand the slice
        # views of any block columns already computed on the parent.
        piece._blocks = {
            offset_bits: blocks[start:stop]
            for offset_bits, blocks in self._blocks.items()
        }
        return piece

    def repeat(self, count: int, name: Optional[str] = None) -> "ColumnarTrace":
        """The trace concatenated with itself ``count`` times."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return ColumnarTrace(
            np.tile(self.addresses, count),
            np.tile(self.writes, count),
            np.tile(self.gaps, count),
            np.tile(self.variable_ids, count),
            self.variable_names,
            name=name or f"{self.name}x{count}",
            sizes=np.tile(self.sizes, count),
        )

    def iter_chunks(
        self, chunk_size: int = 1 << 16
    ) -> Iterator["ColumnarTrace"]:
        """Bounded sub-trace windows, in order (streaming consumers).

        Chunks are array views — no copies, so a memory-mapped trace
        streams through a simulator touching one window at a time.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        for start in range(0, len(self), chunk_size):
            yield self.slice(start, min(start + chunk_size, len(self)))

    # ------------------------------------------------------------------
    # On-disk format
    # ------------------------------------------------------------------
    def save_npz(self, path: Union[str, Path]) -> Path:
        """Write the trace as an uncompressed ``.npz`` archive.

        Members are stored (not deflated) so :func:`load_npz` can
        memory-map the columns in place.
        """
        path = Path(path)
        np.savez(
            path,
            format_version=np.int64(NPZ_FORMAT_VERSION),
            name=np.array(self.name),
            addresses=self.addresses,
            sizes=self.sizes,
            writes=self.writes,
            gaps=self.gaps,
            variable_ids=self.variable_ids,
            variable_names=np.array(self.variable_names, dtype=str),
        )
        # np.savez appends ".npz" when missing; mirror that here.
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        return path

    def __iter__(self) -> Iterator[MemoryAccess]:
        for position in range(len(self)):
            yield self.access_at(position)

    def __len__(self) -> int:
        return len(self.addresses)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, {len(self)} accesses, "
            f"{self.instruction_count} instructions, "
            f"{len(self.variables())} variables)"
        )


def _npz_member_arrays(
    path: Path, mmap: bool
) -> dict[str, np.ndarray]:
    """All ``.npy`` members of an archive, optionally memory-mapped.

    ``numpy.load`` ignores ``mmap_mode`` for zip archives, so the mmap
    path parses each member's zip local header to find where the raw
    ``.npy`` stream starts, reads the npy header there, and maps the
    data portion read-only.  Falls back to eager reading for members
    that are compressed or non-trivially encoded.
    """
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:
        for info in archive.infolist():
            key = info.filename.removesuffix(".npy")
            if not mmap or info.compress_type != zipfile.ZIP_STORED:
                with archive.open(info) as member:
                    arrays[key] = np.lib.format.read_array(
                        member, allow_pickle=False
                    )
                continue
            with open(path, "rb") as handle:
                handle.seek(info.header_offset)
                header = handle.read(30)
                # Local file header: magic, sizes at 26 (name) / 28
                # (extra field); data starts right after both.
                name_length, extra_length = struct.unpack(
                    "<HH", header[26:30]
                )
                data_start = (
                    info.header_offset + 30 + name_length + extra_length
                )
                handle.seek(data_start)
                version = np.lib.format.read_magic(handle)
                if version == (1, 0):
                    shape, fortran, dtype = (
                        np.lib.format.read_array_header_1_0(handle)
                    )
                elif version == (2, 0):
                    shape, fortran, dtype = (
                        np.lib.format.read_array_header_2_0(handle)
                    )
                else:
                    with archive.open(info) as member:
                        arrays[key] = np.lib.format.read_array(
                            member, allow_pickle=False
                        )
                    continue
                if dtype.hasobject:
                    with archive.open(info) as member:
                        arrays[key] = np.lib.format.read_array(
                            member, allow_pickle=False
                        )
                    continue
                arrays[key] = np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    offset=handle.tell(),
                    shape=shape,
                    order="F" if fortran else "C",
                )
    return arrays


def read_npz_members(
    path: Union[str, Path], mmap: bool = False
) -> dict[str, np.ndarray]:
    """Read every array member of an uncompressed ``.npz`` archive.

    The public face of the memory-map loader behind :func:`load_npz`:
    any archive written with uncompressed :func:`numpy.savez` (traces,
    inspection event streams) can be opened in O(1) with ``mmap=True``
    and its members paged in on demand.
    """
    return _npz_member_arrays(Path(path), mmap=mmap)


def load_npz(
    path: Union[str, Path], mmap: bool = False
) -> ColumnarTrace:
    """Load a :meth:`ColumnarTrace.save_npz` archive.

    With ``mmap=True`` the columns are read-only memory maps — the
    trace opens in O(1) and pages stream in as consumers touch them
    (combine with :meth:`ColumnarTrace.iter_chunks` for flat-memory
    replay of arbitrarily long traces).
    """
    path = Path(path)
    arrays = _npz_member_arrays(path, mmap=mmap)
    missing = [column for column in _COLUMNS if column not in arrays]
    if missing:
        raise ValueError(
            f"{path}: not a columnar trace archive (missing {missing})"
        )
    version = int(arrays.get("format_version", np.int64(1)))
    if version > NPZ_FORMAT_VERSION:
        raise ValueError(
            f"{path}: format version {version} is newer than "
            f"supported ({NPZ_FORMAT_VERSION})"
        )
    names_array = arrays.get("variable_names")
    variable_names = (
        [str(name) for name in names_array.tolist()]
        if names_array is not None and names_array.size
        else []
    )
    name_member = arrays.get("name")
    name = str(name_member) if name_member is not None else path.stem
    return ColumnarTrace(
        arrays["addresses"],
        arrays["writes"],
        arrays["gaps"],
        arrays["variable_ids"],
        variable_names,
        name=name,
        sizes=arrays["sizes"],
    )


def open_npz(path: Union[str, Path]) -> ColumnarTrace:
    """Shorthand for :func:`load_npz` with ``mmap=True``."""
    return load_npz(path, mmap=True)


class ColumnarRecorder:
    """Append-only columnar trace constructor (chunked numpy buffers).

    The recorder instrumented kernels write into directly: scalar
    :meth:`append` fills preallocated numpy chunks (no per-access
    Python objects or list round-trips), and the bulk methods
    :meth:`append_many` / :meth:`append_run` record whole vectorized
    access patterns in one call.  API-compatible with the legacy
    :class:`~repro.trace.trace.TraceBuilder` (``add_gap`` / ``append``
    / ``pending_gap`` / ``build``), which remains as the list-based
    reference the differential suite compares against.

    >>> recorder = ColumnarRecorder()
    >>> recorder.add_gap(3)          # three ALU instructions
    >>> recorder.append(0x1000, variable="block")
    >>> recorder.append_run(0x2000, count=4, stride=2, variable="row")
    >>> recorder.build().instruction_count
    8
    """

    def __init__(
        self,
        name: str = "trace",
        chunk_size: int = 1 << 14,
        default_size: int = 1,
    ):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.name = name
        self.chunk_size = chunk_size
        self.default_size = default_size
        self._full: list[tuple[np.ndarray, ...]] = []
        self._count_full = 0
        self._names: list[str] = []
        self._name_ids: dict[str, int] = {}
        self._pending_gap = 0
        self._new_chunk()

    def _new_chunk(self) -> None:
        size = self.chunk_size
        self._addresses = np.zeros(size, dtype=np.int64)
        self._sizes = np.full(size, self.default_size, dtype=np.int32)
        self._writes = np.zeros(size, dtype=bool)
        self._gaps = np.zeros(size, dtype=np.int64)
        self._variable_ids = np.full(size, NO_VARIABLE, dtype=np.int64)
        self._fill = 0

    def _seal_chunk(self) -> None:
        fill = self._fill
        self._full.append(
            (
                self._addresses[:fill],
                self._sizes[:fill],
                self._writes[:fill],
                self._gaps[:fill],
                self._variable_ids[:fill],
            )
        )
        self._count_full += fill
        self._new_chunk()

    def _variable_id(self, variable: Optional[str]) -> int:
        if variable is None:
            return NO_VARIABLE
        identifier = self._name_ids.get(variable)
        if identifier is None:
            identifier = len(self._names)
            self._names.append(variable)
            self._name_ids[variable] = identifier
        return identifier

    def add_gap(self, instructions: int = 1) -> None:
        """Record non-memory instructions before the next access."""
        if instructions < 0:
            raise ValueError(f"gap must be non-negative, got {instructions}")
        self._pending_gap += instructions

    def append(
        self,
        address: int,
        is_write: bool = False,
        variable: Optional[str] = None,
        size: Optional[int] = None,
    ) -> None:
        """Record one memory access."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        if self._fill == self.chunk_size:
            self._seal_chunk()
        fill = self._fill
        self._addresses[fill] = address
        if is_write:
            self._writes[fill] = True
        if size is not None:
            self._sizes[fill] = size
        gap = self._pending_gap
        if gap:
            self._gaps[fill] = gap
            self._pending_gap = 0
        self._variable_ids[fill] = self._variable_id(variable)
        self._fill = fill + 1

    def append_many(
        self,
        addresses: Sequence[int] | np.ndarray,
        is_write: bool | Sequence[bool] | np.ndarray = False,
        variable: Optional[str] = None,
        gaps: Optional[Sequence[int] | np.ndarray] = None,
        sizes: Optional[Sequence[int] | np.ndarray] = None,
        gap_each: int = 0,
    ) -> None:
        """Record a whole access batch in one vectorized call.

        ``is_write`` may be a scalar or a per-access array;
        ``variable`` labels every access of the batch; ``gaps`` gives
        per-access gaps (``gap_each`` a uniform one).  A pending
        :meth:`add_gap` is folded into the first access, matching the
        scalar path exactly.  Every input array is copied — callers
        may freely reuse their scratch buffers after the call.
        """
        addresses = np.array(addresses, dtype=np.int64)  # owned copy
        count = len(addresses)
        if count == 0:
            return
        if addresses.min() < 0:
            raise ValueError("addresses must be non-negative")
        if gaps is not None:
            gaps = np.array(gaps, dtype=np.int64)  # owned copy
            if len(gaps) != count:
                raise ValueError("gaps length mismatch")
            if gaps.min() < 0:
                raise ValueError("gaps must be non-negative")
        elif gap_each:
            if gap_each < 0:
                raise ValueError("gap_each must be non-negative")
            gaps = np.full(count, gap_each, dtype=np.int64)
        else:
            gaps = np.zeros(count, dtype=np.int64)
        if self._pending_gap:
            gaps[0] += self._pending_gap
            self._pending_gap = 0
        if np.isscalar(is_write) or isinstance(is_write, bool):
            writes = np.full(count, bool(is_write))
        else:
            writes = np.array(is_write, dtype=bool)  # owned copy
            if len(writes) != count:
                raise ValueError("is_write length mismatch")
        if sizes is None:
            sizes = np.full(count, self.default_size, dtype=np.int32)
        else:
            sizes = np.array(sizes, dtype=np.int32)  # owned copy
            if len(sizes) != count:
                raise ValueError("sizes length mismatch")
        identifier = self._variable_id(variable)
        ids = np.full(count, identifier, dtype=np.int64)
        # Seal the current scalar chunk and splice the batch in whole.
        self._seal_chunk()
        self._full.append((addresses, sizes, writes, gaps, ids))
        self._count_full += count

    def append_run(
        self,
        base: int,
        count: int,
        stride: int,
        is_write: bool = False,
        variable: Optional[str] = None,
        gap_each: int = 0,
        size: Optional[int] = None,
    ) -> None:
        """Record ``count`` accesses at ``base + i * stride``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        addresses = base + np.arange(count, dtype=np.int64) * np.int64(stride)
        self.append_many(
            addresses,
            is_write=is_write,
            variable=variable,
            gap_each=gap_each,
            sizes=(
                None
                if size is None
                else np.full(count, size, dtype=np.int32)
            ),
        )

    def extend(self, trace: ColumnarTrace) -> None:
        """Append a whole existing trace (variables are re-interned)."""
        if len(trace) == 0:
            return
        id_map = np.full(
            len(trace.variable_names) + 1, NO_VARIABLE, dtype=np.int64
        )
        for local_id, variable in enumerate(trace.variable_names):
            id_map[local_id] = self._variable_id(variable)
        gaps = trace.gaps
        if self._pending_gap:
            gaps = gaps.copy()
            gaps[0] += self._pending_gap
            self._pending_gap = 0
        self._seal_chunk()
        self._full.append(
            (
                np.asarray(trace.addresses, dtype=np.int64),
                np.asarray(trace.sizes, dtype=np.int32),
                np.asarray(trace.writes, dtype=bool),
                np.asarray(gaps, dtype=np.int64),
                id_map[trace.variable_ids],
            )
        )
        self._count_full += len(trace)

    @property
    def pending_gap(self) -> int:
        """Gap instructions not yet attached to an access."""
        return self._pending_gap

    def __len__(self) -> int:
        return self._count_full + self._fill

    def build(self) -> ColumnarTrace:
        """Freeze into an immutable :class:`ColumnarTrace`."""
        parts = self._full + [
            (
                self._addresses[: self._fill],
                self._sizes[: self._fill],
                self._writes[: self._fill],
                self._gaps[: self._fill],
                self._variable_ids[: self._fill],
            )
        ]
        columns = [np.concatenate(column) for column in zip(*parts)]
        return ColumnarTrace(
            columns[0],
            columns[2],
            columns[3],
            columns[4],
            list(self._names),
            name=self.name,
            sizes=columns[1],
        )

"""Pluggable layout-search backends over the conflict graph.

The paper's Section 3.1.2 search — exact coloring plus min-weight-edge
merging — is one way to pick a k-color assignment minimizing the
monochromatic conflict weight W.  This module turns that choice into a
:class:`PlannerBackend` protocol with a registry, mirroring the sweep
engine's runner indirection, so
:class:`~repro.layout.algorithm.DataLayoutPlanner` can search the same
space with different engines (selected by
``LayoutConfig.backend``):

* ``paper`` — the unchanged Section 3.1.2 algorithm
  (:func:`~repro.layout.merge.color_with_merging`);
* ``beam`` — deterministic beam search over color assignments,
  scoring partial assignments with the shared :class:`CostModel`;
* ``evolutionary`` — a genetic algorithm over assignment genomes with
  the vectorized conflict cost as fitness, *seeded with the paper
  solution* so it can only match or improve on it (the search-based
  planner direction of Díaz Álvarez et al.'s evolutionary
  memory-subsystem work).

All backends return a :class:`~repro.layout.merge.MergeResult` whose
``assignment`` maps every vertex to a color in ``[0, k)``; costs are
the W objective on the *original* graph, so results are directly
comparable across backends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.layout.coloring import DEFAULT_NODE_BUDGET
from repro.layout.graph import ConflictGraph
from repro.layout.merge import MergeResult, color_with_merging

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.layout.algorithm import LayoutConfig


class CostModel:
    """Vectorized evaluation of the W objective over one graph.

    Flattens the graph's edges into index/weight arrays once; a color
    assignment is then a *genome* (one int per vertex, in vertex-name
    order) whose cost is a single masked sum — cheap enough to score
    whole populations per generation.
    """

    def __init__(self, graph: ConflictGraph):
        self.names: list[str] = graph.vertex_names()
        self.index: dict[str, int] = {
            name: position for position, name in enumerate(self.names)
        }
        edges = graph.edges()
        self.first = np.array(
            [self.index[a] for a, _, _ in edges], dtype=np.int64
        )
        self.second = np.array(
            [self.index[b] for _, b, _ in edges], dtype=np.int64
        )
        self.weights = np.array(
            [weight for _, _, weight in edges], dtype=np.int64
        )
        self.internal = graph.internal_cost

    def cost(self, genome: np.ndarray) -> int:
        """W of one genome: internalized cost + monochromatic edges."""
        if len(self.weights) == 0:
            return self.internal
        same = genome[self.first] == genome[self.second]
        return self.internal + int(self.weights[same].sum())

    def cost_batch(self, genomes: np.ndarray) -> np.ndarray:
        """W of a whole ``(population, vertices)`` genome matrix."""
        if len(self.weights) == 0:
            return np.full(len(genomes), self.internal, dtype=np.int64)
        same = genomes[:, self.first] == genomes[:, self.second]
        return self.internal + (same * self.weights).sum(axis=1)

    def coloring_of(self, genome: np.ndarray) -> dict[str, int]:
        """The genome as a name -> color mapping."""
        return {
            name: int(color)
            for name, color in zip(self.names, genome.tolist())
        }


@runtime_checkable
class PlannerBackend(Protocol):
    """What a layout-search engine must provide."""

    name: str

    def solve(
        self, graph: ConflictGraph, k: int, config: "LayoutConfig"
    ) -> MergeResult:
        """Assign every vertex of ``graph`` one of ``k`` colors."""
        ...


def _compact_colors(genome: np.ndarray) -> np.ndarray:
    """Renumber colors densely in first-appearance order."""
    mapping: dict[int, int] = {}
    compact = np.empty_like(genome)
    for position, color in enumerate(genome.tolist()):
        compact[position] = mapping.setdefault(color, len(mapping))
    return compact


class PaperBackend:
    """The paper's exact-coloring + min-weight-merging search."""

    name = "paper"

    def solve(
        self, graph: ConflictGraph, k: int, config: "LayoutConfig"
    ) -> MergeResult:
        """Delegate to :func:`~repro.layout.merge.color_with_merging`."""
        return color_with_merging(
            graph,
            k,
            strategy=getattr(config, "merge_strategy", "exact"),
            seed=getattr(config, "seed", 0),
            node_budget=getattr(
                config, "exact_node_budget", DEFAULT_NODE_BUDGET
            ),
        )


class BeamBackend:
    """Deterministic beam search over color assignments.

    Vertices are assigned in descending weighted-degree order; each
    beam state extends with every feasible color (plus at most one new
    color — the usual symmetry breaking), accumulating the exact
    incremental W, and the ``config.beam_width`` cheapest states
    survive each step.  Ties break on the genome bytes so the search
    is fully deterministic.
    """

    name = "beam"

    def solve(
        self, graph: ConflictGraph, k: int, config: "LayoutConfig"
    ) -> MergeResult:
        """Beam-search a k-color assignment minimizing W."""
        if k < 1:
            raise ValueError(f"need at least one color, got k={k}")
        model = CostModel(graph)
        count = len(model.names)
        if count == 0:
            return MergeResult(
                graph=graph, coloring={}, assignment={}, cost=model.internal
            )
        width = max(int(getattr(config, "beam_width", 8)), 1)
        weighted_degree = np.zeros(count, dtype=np.int64)
        np.add.at(weighted_degree, model.first, model.weights)
        np.add.at(weighted_degree, model.second, model.weights)
        order = sorted(
            range(count),
            key=lambda v: (-int(weighted_degree[v]), model.names[v]),
        )
        incident: list[list[tuple[int, int]]] = [[] for _ in range(count)]
        for a, b, w in zip(
            model.first.tolist(), model.second.tolist(),
            model.weights.tolist(),
        ):
            incident[a].append((b, w))
            incident[b].append((a, w))

        # Beam states: (accumulated cost, colors used, genome).
        beam: list[tuple[int, int, np.ndarray]] = [
            (0, 0, np.full(count, -1, dtype=np.int64))
        ]
        for vertex in order:
            candidates: list[tuple[int, int, np.ndarray]] = []
            for cost, used, genome in beam:
                limit = min(used + 1, k)
                for color in range(limit):
                    delta = sum(
                        weight
                        for neighbor, weight in incident[vertex]
                        if genome[neighbor] == color
                    )
                    extended = genome.copy()
                    extended[vertex] = color
                    candidates.append(
                        (cost + delta, max(used, color + 1), extended)
                    )
            candidates.sort(
                key=lambda state: (state[0], state[1], state[2].tobytes())
            )
            beam = candidates[:width]

        _, _, genome = beam[0]
        genome = _compact_colors(genome)
        coloring = model.coloring_of(genome)
        return MergeResult(
            graph=graph,
            coloring=coloring,
            assignment=dict(coloring),
            cost=model.cost(genome),
        )


class EvolutionaryBackend:
    """A genetic algorithm over color-assignment genomes.

    The population is seeded with the paper backend's solution (plus
    mutated copies and random genomes); fitness is the vectorized W of
    :class:`CostModel`; selection is binary tournament, crossover
    uniform, and the per-generation elite survives unchanged.  When no
    genome strictly beats the seed, the paper solution itself is
    returned — the backend can match the paper but never lose to it.
    """

    name = "evolutionary"

    def solve(
        self, graph: ConflictGraph, k: int, config: "LayoutConfig"
    ) -> MergeResult:
        """Evolve a k-color assignment minimizing W."""
        paper = PaperBackend().solve(graph, k, config)
        model = CostModel(graph)
        count = len(model.names)
        if count == 0 or k < 2 or len(model.weights) == 0:
            return paper
        population = max(int(getattr(config, "evolution_population", 32)), 4)
        generations = max(
            int(getattr(config, "evolution_generations", 60)), 1
        )
        rng = np.random.default_rng(getattr(config, "seed", 0))
        seed_genome = np.array(
            [paper.assignment[name] for name in model.names],
            dtype=np.int64,
        )
        mutation_rate = min(max(1.5 / count, 0.02), 0.5)

        pop = rng.integers(0, k, size=(population, count), dtype=np.int64)
        half = population // 2
        pop[1:half] = seed_genome
        jitter = rng.random((max(half - 1, 0), count)) < mutation_rate
        pop[1:half][jitter] = rng.integers(
            0, k, size=int(jitter.sum()), dtype=np.int64
        )
        pop[0] = seed_genome

        for _ in range(generations):
            fitness = model.cost_batch(pop)
            elite = pop[int(np.argmin(fitness))].copy()
            contender_a = rng.integers(0, population, size=population)
            contender_b = rng.integers(0, population, size=population)
            parents_a = np.where(
                fitness[contender_a] <= fitness[contender_b],
                contender_a,
                contender_b,
            )
            contender_c = rng.integers(0, population, size=population)
            contender_d = rng.integers(0, population, size=population)
            parents_b = np.where(
                fitness[contender_c] <= fitness[contender_d],
                contender_c,
                contender_d,
            )
            take_a = rng.random((population, count)) < 0.5
            children = np.where(take_a, pop[parents_a], pop[parents_b])
            mutate = rng.random((population, count)) < mutation_rate
            children[mutate] = rng.integers(
                0, k, size=int(mutate.sum()), dtype=np.int64
            )
            children[0] = elite
            pop = children

        fitness = model.cost_batch(pop)
        best = int(np.argmin(fitness))
        best_cost = int(fitness[best])
        if best_cost >= paper.cost:
            return paper
        genome = _compact_colors(pop[best])
        coloring = model.coloring_of(genome)
        return MergeResult(
            graph=graph,
            coloring=coloring,
            assignment=dict(coloring),
            cost=model.cost(genome),
        )


_REGISTRY: dict[str, PlannerBackend] = {}


def register_backend(backend: PlannerBackend) -> PlannerBackend:
    """Register a backend under its ``name`` (last write wins)."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> PlannerBackend:
    """Look a backend up by name; ValueError lists the choices."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown planner backend {name!r}; "
            f"choose from {available_backends()}"
        ) from None


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


register_backend(PaperBackend())
register_backend(BeamBackend())
register_backend(EvolutionaryBackend())

"""Exact graph coloring (DSATUR branch-and-bound).

The paper colors the zero-edge-pruned conflict graph with an *exact*
minimum-coloring algorithm (Coudert, DAC '97: "Exact Coloring of
Real-Life Graphs is Easy").  Coudert's observation is that real-life
graphs are usually 1-perfect (chromatic number equals clique number),
so an exact branch-and-bound with a clique lower bound terminates
almost immediately.  We implement that scheme:

* greedy maximal clique -> lower bound;
* greedy DSATUR -> upper bound and first incumbent;
* ``color_with_k``: DSATUR-ordered backtracking with symmetry breaking
  (a vertex may open at most one new color), exact for the given k.

Conflict graphs here have tens of vertices, well inside exact range —
but a pathological (non-1-perfect) graph can still blow the
backtracking up, so every exact entry point carries a **node budget**:
:func:`color_with_k` raises :class:`ColoringBudgetExceeded` after
expanding :data:`DEFAULT_NODE_BUDGET` search nodes, and
:func:`exact_coloring` / :func:`chromatic_number` catch it and fall
back to the greedy DSATUR coloring with a warning instead of stalling
whatever planner (or fleet rebalance) invoked them.
"""

from __future__ import annotations

import warnings
from typing import Optional

Adjacency = dict[str, set[str]]

#: Backtracking nodes an exact-coloring attempt may expand before the
#: caller falls back to greedy DSATUR.  Real conflict graphs finish in
#: well under a thousand nodes; the budget only exists so pathological
#: graphs degrade to a heuristic instead of hanging.
DEFAULT_NODE_BUDGET = 200_000


class ColoringBudgetExceeded(RuntimeError):
    """An exact coloring search exceeded its node budget."""


def _check_adjacency(adjacency: Adjacency) -> None:
    for vertex, neighbors in adjacency.items():
        for neighbor in neighbors:
            if neighbor == vertex:
                raise ValueError(f"self-loop on {vertex!r}")
            if neighbor not in adjacency:
                raise ValueError(
                    f"{vertex!r} references unknown vertex {neighbor!r}"
                )
            if vertex not in adjacency[neighbor]:
                raise ValueError(
                    f"asymmetric adjacency between {vertex!r} and "
                    f"{neighbor!r}"
                )


def greedy_clique(adjacency: Adjacency) -> list[str]:
    """A maximal clique found greedily by descending degree."""
    _check_adjacency(adjacency)
    order = sorted(
        adjacency, key=lambda vertex: len(adjacency[vertex]), reverse=True
    )
    clique: list[str] = []
    for vertex in order:
        if all(vertex in adjacency[member] for member in clique):
            clique.append(vertex)
    return clique


def greedy_coloring(adjacency: Adjacency) -> dict[str, int]:
    """DSATUR greedy coloring (upper bound, not necessarily optimal)."""
    _check_adjacency(adjacency)
    coloring: dict[str, int] = {}
    uncolored = set(adjacency)
    saturation: dict[str, set[int]] = {vertex: set() for vertex in adjacency}
    while uncolored:
        vertex = max(
            uncolored,
            key=lambda candidate: (
                len(saturation[candidate]),
                len(adjacency[candidate]),
                # Deterministic tie-break.
                candidate,
            ),
        )
        color = 0
        while color in saturation[vertex]:
            color += 1
        coloring[vertex] = color
        uncolored.remove(vertex)
        for neighbor in adjacency[vertex]:
            saturation[neighbor].add(color)
    return coloring


def color_with_k(
    adjacency: Adjacency, k: int, node_budget: Optional[int] = None
) -> Optional[dict[str, int]]:
    """An exact k-coloring, or None if the graph is not k-colorable.

    DSATUR-ordered backtracking with the standard symmetry breaking:
    when choosing a color for a vertex, at most one *previously unused*
    color is tried.  With ``node_budget`` set, the search raises
    :class:`ColoringBudgetExceeded` after expanding that many nodes —
    the caller decides how to degrade (see :func:`exact_coloring`).
    """
    _check_adjacency(adjacency)
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    vertices = list(adjacency)
    if not vertices:
        return {}
    if k == 0:
        return None

    coloring: dict[str, int] = {}
    neighbor_colors: dict[str, set[int]] = {
        vertex: set() for vertex in vertices
    }
    expanded = 0

    def select_vertex() -> Optional[str]:
        best = None
        best_key = None
        for vertex in vertices:
            if vertex in coloring:
                continue
            key = (len(neighbor_colors[vertex]), len(adjacency[vertex]))
            if best_key is None or key > best_key:
                best, best_key = vertex, key
        return best

    def backtrack(colors_used: int) -> bool:
        nonlocal expanded
        expanded += 1
        if node_budget is not None and expanded > node_budget:
            raise ColoringBudgetExceeded(
                f"exact k-coloring expanded more than {node_budget} "
                "search nodes"
            )
        vertex = select_vertex()
        if vertex is None:
            return True
        forbidden = neighbor_colors[vertex]
        # Existing colors first, then (symmetry breaking) one new color.
        limit = min(colors_used + 1, k)
        for color in range(limit):
            if color in forbidden:
                continue
            coloring[vertex] = color
            touched = []
            for neighbor in adjacency[vertex]:
                if color not in neighbor_colors[neighbor]:
                    neighbor_colors[neighbor].add(color)
                    touched.append(neighbor)
            if backtrack(max(colors_used, color + 1)):
                return True
            del coloring[vertex]
            for neighbor in touched:
                neighbor_colors[neighbor].discard(color)
        return False

    if backtrack(0):
        return dict(coloring)
    return None


def _warn_budget(node_budget: int) -> None:
    warnings.warn(
        f"exact coloring exceeded its {node_budget}-node search "
        "budget; falling back to greedy DSATUR coloring",
        RuntimeWarning,
        stacklevel=3,
    )


def exact_coloring(
    adjacency: Adjacency,
    node_budget: Optional[int] = DEFAULT_NODE_BUDGET,
) -> dict[str, int]:
    """A minimum coloring (exact within the node budget).

    Runs :func:`color_with_k` for increasing k starting at the clique
    lower bound, stopping at the greedy upper bound (which is then
    optimal if nothing smaller worked).  If any attempt blows the node
    budget, warns and returns the greedy coloring instead of hanging.
    """
    _check_adjacency(adjacency)
    if not adjacency:
        return {}
    lower = max(len(greedy_clique(adjacency)), 1)
    greedy = greedy_coloring(adjacency)
    upper = max(greedy.values()) + 1
    for k in range(lower, upper):
        try:
            attempt = color_with_k(adjacency, k, node_budget=node_budget)
        except ColoringBudgetExceeded:
            assert node_budget is not None
            _warn_budget(node_budget)
            return greedy
        if attempt is not None:
            return attempt
    return greedy


def chromatic_number(
    adjacency: Adjacency,
    node_budget: Optional[int] = DEFAULT_NODE_BUDGET,
) -> int:
    """The chromatic number (exact within the node budget).

    On budget exhaustion this inherits :func:`exact_coloring`'s greedy
    fallback, making the result an upper bound rather than exact — the
    accompanying warning says so.
    """
    if not adjacency:
        return 0
    coloring = exact_coloring(adjacency, node_budget=node_budget)
    return max(coloring.values()) + 1

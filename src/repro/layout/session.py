"""The planner session: content-addressed caching for profile→plan.

:class:`PlannerSession` is the planning stack's counterpart of the
sweep engine's result cache: every consumer that plans repeatedly —
the per-phase :class:`~repro.layout.dynamic.DynamicLayoutPlanner`, the
adaptive runtime's :class:`~repro.runtime.policy.RepartitionPolicy`,
the fleet broker's demand-curve probes — routes its profiling, conflict
graphs and plans through one session, keyed by the *content hash* of
(trace window, layout units, config).  A workload that revisits a
phase, or a broker that probes the same window at several candidate
grant sizes, then recomputes nothing: identical inputs are served from
the session's :class:`~repro.sim.engine.cache.ResultCache`.

The session's cache tier is memory-only (profiles, graphs and
assignments are rich Python objects, not JSON) — sharing across
processes stays the sweep engine's job; the session kills redundant
work *within* a planning consumer's lifetime.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from repro.layout.algorithm import DataLayoutPlanner, LayoutConfig
from repro.layout.assignment import ColumnAssignment
from repro.layout.graph import ConflictGraph
from repro.mem.symbols import SymbolTable
from repro.profiling.profiler import Profile, profile_trace
from repro.trace.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - break the sim<->layout cycle
    from repro.sim.engine.cache import ResultCache


def _engine_cache():
    """Deferred import: ``repro.sim.engine`` pulls in executors that
    themselves import :mod:`repro.layout`, so binding at module import
    time would be circular."""
    from repro.sim.engine import cache as engine_cache
    from repro.sim.engine.spec import SimJob

    memo_job = SimJob(
        runner="repro.layout.session:PlannerSession", params={}
    )
    return engine_cache, memo_job


def trace_digest(trace: Trace) -> str:
    """Stable content digest of a trace's profiling-relevant columns."""
    digest = hashlib.sha256()
    digest.update(str(len(trace)).encode())
    for column in (
        trace.addresses,
        trace.writes,
        trace.gaps,
        trace.variable_ids,
    ):
        digest.update(column.tobytes())
    digest.update("\x00".join(trace.variable_names).encode())
    return digest.hexdigest()


def units_digest(units: SymbolTable) -> str:
    """Stable content digest of a symbol table's layout units."""
    digest = hashlib.sha256()
    for variable in units:
        digest.update(
            f"{variable.name}:{variable.base}:{variable.size}:"
            f"{variable.element_size}:{variable.kind.value}\n".encode()
        )
    return digest.hexdigest()


def config_digest(config: LayoutConfig) -> str:
    """Stable content digest of a layout configuration."""
    rendered = json.dumps(
        dataclasses.asdict(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(rendered.encode()).hexdigest()


def profile_digest(profile: Profile) -> str:
    """Stable content digest of a measured profile."""
    digest = hashlib.sha256()
    digest.update(
        f"{profile.total_accesses}:{profile.total_instructions}:"
        f"{profile.unattributed}\n".encode()
    )
    for name, stats in profile.variables.items():
        digest.update(
            f"{name}:{stats.size}:{stats.element_size}:"
            f"{stats.kind.value}:{stats.write_count}:"
            f"{stats.lifetime.start}:{stats.lifetime.stop}\n".encode()
        )
        digest.update(stats.positions.tobytes())
    return digest.hexdigest()


#: Memory-tier bound of a session's default cache: long-running
#: consumers (adaptive policies, fleet brokers) see an unbounded
#: stream of distinct windows, so the LRU keeps only this many
#: profile/graph/plan entries alive.
DEFAULT_SESSION_ENTRIES = 512


class PlannerSession:
    """Caches profiles, conflict graphs and plans by content hash.

    All three layers share one :class:`~repro.sim.engine.cache.
    ResultCache` (memory tier, LRU-bounded).  A profile's digest is
    computed once and pinned on the profile object itself, so a
    profile → graph → plan chain hashes each input exactly once.
    """

    def __init__(
        self,
        cache: Optional["ResultCache"] = None,
        max_entries: int = DEFAULT_SESSION_ENTRIES,
    ):
        engine_cache, self._memo_job = _engine_cache()
        self._miss = engine_cache.MISS
        if cache is not None and cache.directory is not None:
            raise ValueError(
                "PlannerSession caches rich objects; use a "
                "memory-only ResultCache (directory=None)"
            )
        self.cache = (
            cache
            if cache is not None
            else engine_cache.ResultCache(
                max_memory_entries=max_entries
            )
        )

    # ------------------------------------------------------------------
    # Digest bookkeeping
    # ------------------------------------------------------------------
    @staticmethod
    def _digest_of(profile: Profile) -> str:
        """The profile's content digest, computed once per object.

        Stored on the instance (not an id-keyed side table) so a
        garbage-collected profile can never leak its digest to a new
        object that reuses its address.
        """
        known = getattr(profile, "_session_digest", None)
        if known is None:
            known = profile_digest(profile)
            profile._session_digest = known
        return known

    def memo(self, key: str, compute: Callable[[], Any]) -> Any:
        """Generic content-addressed memoization on the session cache."""
        value = self.cache.get(key)
        if value is self._miss:
            value = self.cache.put(key, self._memo_job, compute())
        return value

    def memo_batch(
        self,
        keys: Sequence[str],
        compute: Callable[[list[int]], list[Any]],
    ) -> list[Any]:
        """Batched memoization: compute all missing keys in one call.

        Every key is looked up first; ``compute`` then receives the
        *indices* of the distinct missing keys (first-occurrence
        order) and must return one value per index.  The computed
        values are cached and the full value list returned in key
        order — so a consumer with a batchable kernel (the fleet
        broker's demand probes) pays one fused computation for all
        misses instead of one per key, while hits stay free.
        """
        values = [self.cache.get(key) for key in keys]
        missing: dict[str, int] = {}
        for index, key in enumerate(keys):
            if values[index] is self._miss and key not in missing:
                missing[key] = index
        if missing:
            computed = compute(list(missing.values()))
            if len(computed) != len(missing):
                raise ValueError(
                    f"compute returned {len(computed)} values for "
                    f"{len(missing)} missing keys"
                )
            by_key = {
                key: self.cache.put(key, self._memo_job, value)
                for key, value in zip(missing, computed)
            }
            values = [
                by_key[key] if value is self._miss else value
                for key, value in zip(keys, values)
            ]
        return values

    # ------------------------------------------------------------------
    # The profile → graph → plan chain
    # ------------------------------------------------------------------
    def profile(
        self,
        trace: Trace,
        units: Optional[SymbolTable] = None,
        by_address: bool = False,
    ) -> Profile:
        """A (cached) profile of ``trace`` against ``units``."""
        key = (
            f"profile:{trace_digest(trace)}:"
            f"{units_digest(units) if units is not None else '-'}:"
            f"{int(by_address)}"
        )
        profile = self.cache.get(key)
        if profile is self._miss:
            profile = profile_trace(trace, units, by_address=by_address)
            profile._session_digest = key
            self.cache.put(key, self._memo_job, profile)
        return profile

    def graph(
        self, profile: Profile, names: tuple[str, ...]
    ) -> ConflictGraph:
        """A (cached) conflict graph over ``names``."""
        key = (
            f"graph:{self._digest_of(profile)}:"
            + "\x00".join(names)
        )
        return self.memo(
            key,
            lambda: ConflictGraph.from_profile(
                profile, variables=list(names)
            ),
        )

    def plan_from_profile(
        self,
        config: LayoutConfig,
        profile: Profile,
        units: SymbolTable,
    ) -> ColumnAssignment:
        """A (cached) column assignment for an existing profile."""
        key = (
            f"plan:{config_digest(config)}:"
            f"{self._digest_of(profile)}:{units_digest(units)}"
        )
        return self.memo(
            key,
            lambda: DataLayoutPlanner(
                config, graph_provider=self.graph
            ).plan_from_profile(profile, units),
        )

    def plan(
        self,
        config: LayoutConfig,
        trace: Trace,
        units: SymbolTable,
        by_address: bool = True,
    ) -> ColumnAssignment:
        """Profile ``trace`` and plan a layout, both content-cached."""
        profile = self.profile(trace, units, by_address=by_address)
        return self.plan_from_profile(config, profile, units)

    @property
    def stats(self) -> dict[str, int]:
        """Cache counters (hits include profile/graph/plan layers)."""
        return {
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "entries": len(self.cache),
        }

"""The merging heuristic of paper Section 3.1.2.

"If the number of colors required is more than k ... we find the
minimum-weight edge in G and merge the vertices that are connected by
this edge.  This results in a smaller graph with one less vertex.  We
run exact minimum graph coloring on this graph ... We stop when the
number of colors required is less than or equal to k, and assign
columns to vertices by the coloring.  Any merged vertices are assigned
to the same column."

For the coloring-strategy ablation the exact oracle can be swapped for
plain greedy DSATUR or a seeded random assignment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.layout.coloring import (
    chromatic_number,
    color_with_k,
    exact_coloring,
    greedy_coloring,
)
from repro.layout.graph import ConflictGraph


@dataclass
class MergeResult:
    """Outcome of coloring-with-merging.

    Attributes:
        graph: The final (possibly contracted) graph.
        coloring: Color per final-graph vertex.
        assignment: Color per *original* layout unit.
        cost: Achieved W on the original graph (internalized merge
            weights; remaining monochromatic edges are zero by
            construction when the exact oracle is used).
        merges: The contracted edges, in order, as (a, b, weight).
    """

    graph: ConflictGraph
    coloring: dict[str, int]
    assignment: dict[str, int]
    cost: int
    merges: list[tuple[str, str, int]] = field(default_factory=list)

    @property
    def colors_used(self) -> int:
        """Number of distinct colors in the final coloring."""
        if not self.coloring:
            return 0
        return max(self.coloring.values()) + 1


def color_with_merging(
    graph: ConflictGraph,
    k: int,
    strategy: str = "exact",
    seed: int = 0,
) -> MergeResult:
    """Color ``graph`` with at most ``k`` colors, merging as needed.

    Args:
        graph: The conflict graph (zero edges already dropped).
        k: Available columns.
        strategy: "exact" (paper), "greedy" (DSATUR only, no
            backtracking) or "random" (ablation baselines).
        seed: Seed for the random strategy.
    """
    if k < 1:
        raise ValueError(f"need at least one color, got k={k}")
    if strategy not in ("exact", "greedy", "random"):
        raise ValueError(f"unknown strategy {strategy!r}")

    if strategy == "random":
        rng = random.Random(seed)
        coloring = {
            vertex: rng.randrange(k) for vertex in graph.vertex_names()
        }
        return MergeResult(
            graph=graph,
            coloring=coloring,
            assignment=dict(coloring),
            cost=graph.monochromatic_cost(coloring),
        )

    merges: list[tuple[str, str, int]] = []
    current = graph
    while True:
        adjacency = current.adjacency()
        if strategy == "exact":
            attempt = color_with_k(adjacency, k)
            if attempt is not None:
                coloring = attempt
                break
            needed = chromatic_number(adjacency)
        else:  # greedy
            coloring = greedy_coloring(adjacency)
            needed = (max(coloring.values()) + 1) if coloring else 0
            if needed <= k:
                break
        assert needed > k
        if current.edge_count() == 0:
            # No edges but too many colors is impossible (an edgeless
            # graph is 1-colorable); defensive guard.
            raise AssertionError(
                "coloring requires more colors than k on an edgeless graph"
            )
        first, second, weight = current.min_weight_edge()
        merges.append((first, second, weight))
        current = current.merge(first, second)

    assignment: dict[str, int] = {}
    for vertex_name, color in coloring.items():
        for member in current.vertex(vertex_name).members:
            assignment[member] = color
    cost = current.monochromatic_cost(coloring)
    return MergeResult(
        graph=current,
        coloring=coloring,
        assignment=assignment,
        cost=cost,
        merges=merges,
    )


def optimal_cost_reference(graph: ConflictGraph, k: int) -> int:
    """Brute-force minimum W over *all* k-assignments (tests only).

    Exponential; callable only on tiny graphs to verify the heuristic's
    quality bounds.
    """
    names = graph.vertex_names()
    if len(names) > 10:
        raise ValueError("brute force limited to 10 vertices")
    best = None
    assignment = [0] * len(names)

    def recurse(position: int) -> None:
        nonlocal best
        if position == len(names):
            coloring = dict(zip(names, assignment))
            cost = graph.monochromatic_cost(coloring)
            if best is None or cost < best:
                best = cost
            return
        for color in range(k):
            assignment[position] = color
            recurse(position + 1)

    recurse(0)
    assert best is not None
    return best

"""The merging heuristic of paper Section 3.1.2.

"If the number of colors required is more than k ... we find the
minimum-weight edge in G and merge the vertices that are connected by
this edge.  This results in a smaller graph with one less vertex.  We
run exact minimum graph coloring on this graph ... We stop when the
number of colors required is less than or equal to k, and assign
columns to vertices by the coloring.  Any merged vertices are assigned
to the same column."

For the coloring-strategy ablation the exact oracle can be swapped for
plain greedy DSATUR or a seeded random assignment.

Two guards keep the exact loop fast and bounded without changing its
output:

* a merge iteration whose greedy maximal clique already exceeds ``k``
  skips the (necessarily failing, potentially exponential) exact
  attempt — any clique larger than ``k`` proves non-k-colorability, so
  the iteration proceeds straight to the min-weight merge the failed
  search would have led to anyway;
* each exact attempt carries the :data:`~repro.layout.coloring.
  DEFAULT_NODE_BUDGET` node budget; on exhaustion the loop degrades to
  greedy DSATUR (with a warning) instead of stalling the caller — the
  behaviour a live fleet rebalance needs on a pathological graph.
"""

from __future__ import annotations

import heapq
import random
import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.layout.coloring import (
    DEFAULT_NODE_BUDGET,
    ColoringBudgetExceeded,
    color_with_k,
    greedy_clique,
    greedy_coloring,
)
from repro.layout.graph import MERGE_SEPARATOR, ConflictGraph, VertexInfo


class _ContractionState:
    """Mutable mirror of the merge loop's graph (hot-path form).

    :meth:`ConflictGraph.merge` rebuilds the whole vertex and edge
    dictionaries per contraction — O(E) each, which dominated planning
    on large unit sets.  This state applies the identical contraction
    in O(degree) by keeping a nested neighbor->weight map, and
    reproduces :class:`ConflictGraph`'s observable behaviour exactly:
    vertex *order* (original order with merged vertices appended — the
    coloring's tie-breaks see the same enumeration), merged names,
    member order, summed weights and internalized cost.

    It also maintains a clique *certificate*: a greedy maximal clique
    of the initial graph, updated through contractions (merging two
    clique members shrinks it by one; merging one keeps its size).
    Contracting never breaks the clique property, so while the
    certificate exceeds ``k`` the graph is provably not k-colorable
    and the (necessarily failing, worst-case exponential) exact
    attempt is skipped with no behaviour change.
    """

    def __init__(self, graph: ConflictGraph):
        names = graph.vertex_names()
        self._gid_of = {name: gid for gid, name in enumerate(names)}
        self.name: dict[int, str] = dict(enumerate(names))
        self.info: dict[int, VertexInfo] = {
            gid: graph.vertex(name) for gid, name in enumerate(names)
        }
        self.order: list[int] = list(range(len(names)))
        self.neighbors: dict[int, dict[int, int]] = {
            gid: {} for gid in self.order
        }
        for first, second, weight in graph.edges():
            a, b = self._gid_of[first], self._gid_of[second]
            self.neighbors[a][b] = weight
            self.neighbors[b][a] = weight
        self.internal = graph.internal_cost
        self._next = len(names)
        self._clique = {
            self._gid_of[name]
            for name in greedy_clique(graph.adjacency())
        }
        # Lazy min-heap over edges keyed (weight, low name, high name)
        # — the exact min_weight_edge ordering.  Names are immutable
        # per gid and an edge's weight is fixed at creation (merges
        # delete edges and create fresh ones on a fresh gid), so an
        # entry is stale iff its edge no longer exists.
        self._heap: list[tuple[int, str, str, int, int]] = []
        for first, second, weight in graph.edges():
            self._push_edge(
                self._gid_of[first], self._gid_of[second], weight
            )
        heapq.heapify(self._heap)

    def _push_edge(self, a: int, b: int, weight: int) -> None:
        low, high = self.name[a], self.name[b]
        if low > high:
            low, high = high, low
        self._heap.append((weight, low, high, a, b))

    def clique_size(self) -> int:
        """Size of the maintained clique certificate."""
        return len(self._clique)

    def edge_count(self) -> int:
        """Number of live (positive-weight) edges."""
        return sum(len(nbrs) for nbrs in self.neighbors.values()) // 2

    def adjacency_by_name(self) -> dict[str, set[str]]:
        """Adjacency in :meth:`ConflictGraph.adjacency` vertex order."""
        return {
            self.name[gid]: {
                self.name[other] for other in self.neighbors[gid]
            }
            for gid in self.order
        }

    def min_edge(self) -> tuple[int, int]:
        """The minimum-weight edge under the name-pair tie-break.

        Pops the lazy heap until a live entry surfaces (amortized
        O(log E)); the heap key is the exact
        :meth:`ConflictGraph.min_weight_edge` ordering.
        """
        heap = self._heap
        while heap:
            _, _, _, a, b = heap[0]
            nbrs = self.neighbors.get(a)
            if nbrs is not None and b in nbrs:
                return a, b
            heapq.heappop(heap)
        raise ValueError("graph has no edges")

    def merge(self, a: int, b: int) -> tuple[str, str, int]:
        """Contract edge (a, b); returns the (first, second, weight)
        merge-log entry in :meth:`ConflictGraph.merge` convention."""
        if self.name[a] > self.name[b]:
            a, b = b, a
        first, second = self.name[a], self.name[b]
        weight = self.neighbors[a][b]
        self.internal += weight
        merged_gid = self._next
        self._next += 1
        info_a, info_b = self.info[a], self.info[b]
        self.name[merged_gid] = f"{first}{MERGE_SEPARATOR}{second}"
        self.info[merged_gid] = VertexInfo(
            name=self.name[merged_gid],
            size=info_a.size + info_b.size,
            access_count=info_a.access_count + info_b.access_count,
            members=info_a.members + info_b.members,
        )
        combined: dict[int, int] = {}
        for endpoint in (a, b):
            for other, edge_weight in self.neighbors[endpoint].items():
                if other in (a, b):
                    continue
                combined[other] = combined.get(other, 0) + edge_weight
                other_map = self.neighbors[other]
                other_map.pop(endpoint, None)
        for other, edge_weight in combined.items():
            self.neighbors[other][merged_gid] = edge_weight
            heapq.heappush(
                self._heap,
                (
                    edge_weight,
                    *(
                        (self.name[merged_gid], self.name[other])
                        if self.name[merged_gid] < self.name[other]
                        else (self.name[other], self.name[merged_gid])
                    ),
                    merged_gid,
                    other,
                ),
            )
        self.neighbors[merged_gid] = combined
        del self.neighbors[a], self.neighbors[b]
        del self.name[a], self.name[b]
        del self.info[a], self.info[b]
        self.order = [g for g in self.order if g not in (a, b)]
        self.order.append(merged_gid)
        if a in self._clique or b in self._clique:
            self._clique.discard(a)
            self._clique.discard(b)
            self._clique.add(merged_gid)
        return first, second, weight

    def to_graph(self) -> ConflictGraph:
        """Freeze back into an immutable :class:`ConflictGraph`."""
        vertices = {self.name[gid]: self.info[gid] for gid in self.order}
        weights: dict[frozenset[str], int] = {}
        for a in self.order:
            for b, weight in self.neighbors[a].items():
                if b < a:
                    continue
                weights[frozenset((self.name[a], self.name[b]))] = weight
        return ConflictGraph(
            vertices, weights, internal_cost=self.internal
        )


@dataclass
class MergeResult:
    """Outcome of coloring-with-merging.

    Attributes:
        graph: The final (possibly contracted) graph.
        coloring: Color per final-graph vertex.
        assignment: Color per *original* layout unit.
        cost: Achieved W on the original graph (internalized merge
            weights; remaining monochromatic edges are zero by
            construction when the exact oracle is used).
        merges: The contracted edges, in order, as (a, b, weight).
    """

    graph: ConflictGraph
    coloring: dict[str, int]
    assignment: dict[str, int]
    cost: int
    merges: list[tuple[str, str, int]] = field(default_factory=list)

    @property
    def colors_used(self) -> int:
        """Number of distinct colors in the final coloring."""
        if not self.coloring:
            return 0
        return max(self.coloring.values()) + 1


def color_with_merging(
    graph: ConflictGraph,
    k: int,
    strategy: str = "exact",
    seed: int = 0,
    node_budget: Optional[int] = DEFAULT_NODE_BUDGET,
) -> MergeResult:
    """Color ``graph`` with at most ``k`` colors, merging as needed.

    Args:
        graph: The conflict graph (zero edges already dropped).
        k: Available columns.
        strategy: "exact" (paper), "greedy" (DSATUR only, no
            backtracking) or "random" (ablation baselines).
        seed: Seed for the random strategy.
        node_budget: Per-attempt search budget for the exact oracle;
            on exhaustion the loop falls back to greedy DSATUR with a
            warning (None = unbounded).
    """
    if k < 1:
        raise ValueError(f"need at least one color, got k={k}")
    if strategy not in ("exact", "greedy", "random"):
        raise ValueError(f"unknown strategy {strategy!r}")

    if strategy == "random":
        rng = random.Random(seed)
        coloring = {
            vertex: rng.randrange(k) for vertex in graph.vertex_names()
        }
        return MergeResult(
            graph=graph,
            coloring=coloring,
            assignment=dict(coloring),
            cost=graph.monochromatic_cost(coloring),
        )

    merges: list[tuple[str, str, int]] = []
    state = _ContractionState(graph)
    budget_blown = False
    while True:
        coloring = None
        if strategy == "exact" and not budget_blown:
            # While the clique certificate exceeds k the graph is
            # provably not k-colorable — skip the exact attempt that
            # would only burn (worst-case exponential) time failing.
            if state.clique_size() <= k:
                try:
                    coloring = color_with_k(
                        state.adjacency_by_name(),
                        k,
                        node_budget=node_budget,
                    )
                except ColoringBudgetExceeded:
                    assert node_budget is not None
                    warnings.warn(
                        f"exact coloring exceeded its {node_budget}-node"
                        " search budget during merging; continuing with "
                        "greedy DSATUR",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    budget_blown = True
        if strategy == "greedy" or budget_blown:
            greedy = greedy_coloring(state.adjacency_by_name())
            needed = (max(greedy.values()) + 1) if greedy else 0
            if needed <= k:
                coloring = greedy
        if coloring is not None:
            break
        if state.edge_count() == 0:
            # No edges but too many colors is impossible (an edgeless
            # graph is 1-colorable); defensive guard.
            raise AssertionError(
                "coloring requires more colors than k on an edgeless graph"
            )
        merges.append(state.merge(*state.min_edge()))
    current = state.to_graph()

    assignment: dict[str, int] = {}
    for vertex_name, color in coloring.items():
        for member in current.vertex(vertex_name).members:
            assignment[member] = color
    cost = current.monochromatic_cost(coloring)
    return MergeResult(
        graph=current,
        coloring=coloring,
        assignment=assignment,
        cost=cost,
        merges=merges,
    )


def optimal_cost_reference(graph: ConflictGraph, k: int) -> int:
    """Brute-force minimum W over *all* k-assignments (tests only).

    Exponential; callable only on tiny graphs to verify the heuristic's
    quality bounds.
    """
    names = graph.vertex_names()
    if len(names) > 10:
        raise ValueError("brute force limited to 10 vertices")
    best = None
    assignment = [0] * len(names)

    def recurse(position: int) -> None:
        nonlocal best
        if position == len(names):
            coloring = dict(zip(names, assignment))
            cost = graph.monochromatic_cost(coloring)
            if best is None or cost < best:
                best = cost
            return
        for color in range(k):
            assignment[position] = color
            recurse(position + 1)

    recurse(0)
    assert best is not None
    return best

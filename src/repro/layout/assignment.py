"""Column assignments: the layout algorithm's output.

A :class:`ColumnAssignment` gives every layout unit a *disposition*:

* ``CACHED`` with a column mask (usually a single column, footnote 2 of
  the paper);
* ``SCRATCHPAD`` — pinned one-to-one in the dedicated scratchpad
  columns;
* ``UNCACHED`` — no backing column at all (possible when every column
  is scratchpad and the unit did not fit): accesses bypass to slow
  memory.

:meth:`ColumnAssignment.realize` writes the assignment into the
software-visible structures of Section 2.2 — one tint per column group
in a :class:`~repro.mem.tint.TintTable`, page tints in a
:class:`~repro.mem.page_table.PageTable` — so the full hardware/software
path (page table -> TLB -> replacement unit) can be simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.mem.page_table import PageTable
from repro.mem.symbols import SymbolTable, Variable
from repro.mem.tint import TintTable
from repro.utils.bitvector import ColumnMask
from repro.utils.tables import format_table


class Disposition(Enum):
    """Where a layout unit's data lives."""

    CACHED = "cached"
    SCRATCHPAD = "scratchpad"
    UNCACHED = "uncached"


@dataclass(frozen=True)
class VariablePlacement:
    """One layout unit's assignment."""

    variable: Variable
    disposition: Disposition
    mask: ColumnMask

    @property
    def name(self) -> str:
        """The layout unit's name."""
        return self.variable.name


@dataclass
class ColumnAssignment:
    """A complete mapping of layout units to columns.

    Attributes:
        columns: Total column count k.
        column_bytes: Size of one column.
        line_size: Cache-line size.
        scratchpad_mask: Columns dedicated to scratchpad (p columns).
        placements: Per-unit placement, keyed by unit name.
        layout_symbols: The (possibly split) symbol table the placements
            refer to — needed to attribute trace addresses to units.
        predicted_cost: The algorithm's achieved objective W.
    """

    columns: int
    column_bytes: int
    line_size: int
    scratchpad_mask: ColumnMask
    placements: dict[str, VariablePlacement]
    layout_symbols: SymbolTable
    predicted_cost: int = 0
    merges: list[tuple[str, str, int]] = field(default_factory=list)

    @property
    def cache_mask(self) -> ColumnMask:
        """Columns left for normal caching."""
        return self.scratchpad_mask.complement()

    def placement(self, name: str) -> VariablePlacement:
        """Placement of a unit by name."""
        return self.placements[name]

    def mask_for(self, name: str) -> ColumnMask:
        """Column mask of a unit."""
        return self.placements[name].mask

    def disposition_of(self, name: str) -> Disposition:
        """Disposition of a unit."""
        return self.placements[name].disposition

    def units_with(self, disposition: Disposition) -> list[VariablePlacement]:
        """All placements with the given disposition, address-ordered."""
        return [
            placement
            for placement in sorted(
                self.placements.values(), key=lambda p: p.variable.base
            )
            if placement.disposition is disposition
        ]

    def distinct_tint_masks(self) -> set[int]:
        """Mask bits of each distinct non-uncached placement.

        One tint-table entry exists per distinct mask, so installing
        this assignment costs one tint write per element (the shared
        remap-pricing rule of the executors and the adaptive runtime).
        """
        return {
            placement.mask.bits
            for placement in self.placements.values()
            if placement.disposition is not Disposition.UNCACHED
        }

    def scratchpad_bytes_used(self) -> int:
        """Bytes pinned in the scratchpad columns."""
        return sum(
            placement.variable.size
            for placement in self.units_with(Disposition.SCRATCHPAD)
        )

    # ------------------------------------------------------------------
    # Realization into page table + tint table (paper Section 2.2)
    # ------------------------------------------------------------------
    def realize(
        self,
        page_table: PageTable,
        tint_table: TintTable,
        tint_prefix: str = "",
    ) -> dict[str, str]:
        """Install the assignment as tints; returns unit -> tint name.

        One tint is created (or remapped) per distinct column mask;
        pages of uncached units get their cached bit cleared.  Raises
        if two units with different masks share a page — the memory map
        should have been page-aligned.
        """
        page_owner: dict[int, str] = {}
        unit_tints: dict[str, str] = {}
        for placement in self.placements.values():
            pages = list(
                placement.variable.range.pages(page_table.page_size)
            )
            if placement.disposition is Disposition.UNCACHED:
                for vpn in pages:
                    self._claim_page(page_owner, vpn, placement.name)
                    page_table.set_cached(vpn, False)
                continue
            tint = f"{tint_prefix}mask{placement.mask.bits:02x}"
            tint_table.define_or_remap(tint, placement.mask)
            unit_tints[placement.name] = tint
            for vpn in pages:
                self._claim_page(page_owner, vpn, placement.name)
                page_table.set_tint(vpn, tint)
                page_table.set_cached(vpn, True)
        return unit_tints

    @staticmethod
    def _claim_page(
        page_owner: dict[int, str], vpn: int, unit: str
    ) -> None:
        previous = page_owner.get(vpn)
        if previous is not None and previous != unit:
            raise ValueError(
                f"units {previous!r} and {unit!r} share page {vpn}; "
                "use a page-aligned memory map"
            )
        page_owner[vpn] = unit

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable placement table."""
        rows = []
        for placement in sorted(
            self.placements.values(), key=lambda p: p.variable.base
        ):
            rows.append(
                [
                    placement.name,
                    placement.variable.size,
                    placement.disposition.value,
                    placement.mask.to_string(),
                ]
            )
        return format_table(
            ["unit", "bytes", "disposition", "columns"],
            rows,
            title=(
                f"assignment: {self.columns} columns x "
                f"{self.column_bytes}B, W={self.predicted_cost}"
            ),
        )

    def check_valid(self) -> list[str]:
        """Structural validity problems of this assignment (empty = ok).

        Checks every backend-emitted assignment must satisfy,
        regardless of which search engine produced it:

        * every placement's unit exists in ``layout_symbols``;
        * cached placements carry a non-empty mask of the declared
          width, disjoint from the scratchpad columns;
        * scratchpad placements sit exactly on the scratchpad mask;
        * uncached placements carry the empty mask.
        """
        problems: list[str] = []
        for name, placement in self.placements.items():
            mask = placement.mask
            if name not in self.layout_symbols:
                problems.append(f"{name}: not a layout unit")
            if mask.width != self.columns:
                problems.append(
                    f"{name}: mask width {mask.width} != {self.columns}"
                )
                continue
            if placement.disposition is Disposition.CACHED:
                if mask.is_empty():
                    problems.append(f"{name}: cached with empty mask")
                if mask.overlaps(self.scratchpad_mask):
                    problems.append(
                        f"{name}: cached mask overlaps scratchpad columns"
                    )
            elif placement.disposition is Disposition.SCRATCHPAD:
                if mask != self.scratchpad_mask:
                    problems.append(
                        f"{name}: scratchpad placement off the "
                        "scratchpad mask"
                    )
            elif not mask.is_empty():
                problems.append(f"{name}: uncached with non-empty mask")
        return problems

    def column_utilization(self) -> list[int]:
        """Bytes of units assigned per column (cached + scratchpad)."""
        usage = [0] * self.columns
        for placement in self.placements.values():
            if placement.disposition is Disposition.UNCACHED:
                continue
            share = placement.mask.count()
            if share == 0:
                continue
            for column in placement.mask:
                usage[column] += placement.variable.size // share
        return usage

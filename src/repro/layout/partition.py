"""Step 1 of the layout algorithm: splitting oversized variables.

"If a variable v is larger than the size of a column S, even if v is
exclusively assigned, we cannot treat it as scratchpad memory because
elements of v may replace other elements of v.  Thus, v is split into
separate subarrays, each of which can fit into a column."

:func:`split_for_columns` rewrites a symbol table so every array unit
fits in one column; subarrays are named ``parent#i`` and keep a back
reference via ``Variable.parent``.  Small variables can optionally be
*aggregated* (the paper's "a set of variables can be aggregated into a
single variable"): aggregation here happens implicitly through vertex
merging, but :func:`aggregate_scalars` provides the explicit variant
for scalars, which the paper groups before assignment.
"""

from __future__ import annotations

from repro.mem.symbols import SymbolTable, Variable, VariableKind
from repro.utils.validation import check_positive


def split_for_columns(
    symbols: SymbolTable, column_bytes: int
) -> SymbolTable:
    """A new symbol table whose array units each fit in one column.

    >>> from repro.mem.address import AddressRange
    >>> table = SymbolTable()
    >>> _ = table.add(Variable("big", AddressRange(0, 1024), 2))
    >>> [v.name for v in split_for_columns(table, 512)]
    ['big#0', 'big#1']
    """
    check_positive(column_bytes, "column_bytes")
    result = SymbolTable()
    for variable in symbols:
        if (
            variable.kind is VariableKind.ARRAY
            and variable.size > column_bytes
        ):
            for piece in variable.split(column_bytes):
                result.add(piece)
        else:
            result.add(variable)
    return result


def units_of(symbols: SymbolTable, parent: str) -> list[Variable]:
    """All layout units derived from (or equal to) ``parent``."""
    return [
        variable
        for variable in symbols
        if variable.name == parent or variable.parent == parent
    ]


def aggregate_scalars(
    symbols: SymbolTable, group_name: str = "scalars"
) -> tuple[SymbolTable, list[str]]:
    """Note which scalars would be aggregated into one unit.

    Scalars are physically scattered (they are not contiguous in the
    address map), so true aggregation would require relocation; the
    planner instead treats the returned name list as a pre-merged
    vertex group.  Returns the unchanged table and the scalar names.
    """
    scalar_names = [variable.name for variable in symbols.scalars()]
    return symbols, scalar_names

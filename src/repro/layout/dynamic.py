"""Dynamic (per-phase) data layout — paper Section 3.2.

"Since column mappings can be changed almost instantaneously, one can
perform re-assignments at any point within an application ...  we can
use the static data layout algorithm on individual procedures or
sub-procedures rather than the entire application program, and if
re-assignment of variables to columns is warranted ... we will change
the column mapping prior to executing the procedure."

:class:`DynamicLayoutPlanner` runs the static planner on each labelled
phase of a workload run and decides, per phase transition, whether a
remap is *warranted*: it keeps the previous assignment when the
predicted conflict cost of reusing it is within ``remap_threshold`` of
the fresh assignment's cost (the paper's observation that procedures
with disjoint variable sets never need remapping falls out of this
automatically — the reuse cost is then equal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.layout.algorithm import LayoutConfig
from repro.layout.assignment import ColumnAssignment, Disposition
from repro.layout.graph import ConflictGraph
from repro.layout.partition import split_for_columns
from repro.layout.session import PlannerSession
from repro.workloads.base import WorkloadRun


@dataclass
class PhasePlan:
    """The plan for one phase.

    Attributes:
        label: Phase label.
        assignment: The column assignment in force during the phase.
        remapped: True if this phase installed a new mapping (the first
            phase always counts as a remap — the initial installation).
        reuse_cost: Predicted W of keeping the previous assignment.
        fresh_cost: Predicted W of the phase's own best assignment.
    """

    label: str
    assignment: ColumnAssignment
    remapped: bool
    reuse_cost: Optional[int] = None
    fresh_cost: int = 0


@dataclass
class DynamicLayoutPlan:
    """Per-phase assignments plus remap bookkeeping."""

    phases: list[PhasePlan] = field(default_factory=list)

    @property
    def remap_count(self) -> int:
        """Number of phases that installed a new mapping."""
        return sum(1 for phase in self.phases if phase.remapped)

    def assignment_for(self, label: str) -> ColumnAssignment:
        """The assignment in force for the first phase with ``label``."""
        for phase in self.phases:
            if phase.label == label:
                return phase.assignment
        raise KeyError(f"no phase labelled {label!r}")


def evaluate_reuse_cost(
    profile,
    units,
    previous: ColumnAssignment,
    graph_provider=None,
) -> Optional[int]:
    """Predicted W of keeping ``previous`` for this profile's accesses.

    None (= must remap) when the profile touches units the previous
    assignment never placed, or units it left uncached that now carry
    accesses.  Shared by :class:`DynamicLayoutPlanner` (offline,
    labelled phases) and the runtime's
    :class:`~repro.runtime.policy.RepartitionPolicy` (online, detected
    phases).  ``graph_provider`` (a
    :meth:`~repro.layout.session.PlannerSession.graph` bound method)
    lets the caller share the conflict graph with the planner instead
    of rebuilding it.
    """
    names = [name for name in profile.variables if name in units]
    coloring: dict[str, int] = {}
    for name in names:
        if name not in previous.placements:
            return None
        placement = previous.placements[name]
        if placement.disposition is Disposition.UNCACHED:
            return None
        if placement.disposition is Disposition.SCRATCHPAD:
            # Pinned units conflict with nothing.
            coloring[name] = -1 - previous.columns
            continue
        coloring[name] = placement.mask.lowest()
    if graph_provider is not None:
        graph = graph_provider(profile, tuple(names))
    else:
        graph = ConflictGraph.from_profile(profile, variables=names)
    # Scratchpad units must not be counted as conflicting: give each
    # a unique pseudo-color.
    pseudo = -1
    for name in names:
        if coloring[name] < -previous.columns:
            coloring[name] = pseudo
            pseudo -= 1
    return graph.monochromatic_cost(coloring)


@dataclass
class DynamicLayoutPlanner:
    """Per-phase planning with a remap-benefit test.

    All profiling, graph construction and planning runs through a
    :class:`~repro.layout.session.PlannerSession`, so workloads that
    revisit a phase with identical content plan it exactly once.
    """

    config: LayoutConfig
    remap_threshold: int = 0
    session: Optional[PlannerSession] = None

    def plan(self, run: WorkloadRun) -> DynamicLayoutPlan:
        """Plan one assignment per phase of ``run``."""
        session = self.session if self.session is not None else (
            PlannerSession()
        )
        units = (
            split_for_columns(run.memory_map.symbols, self.config.column_bytes)
            if self.config.split_oversized
            else run.memory_map.symbols
        )
        plan = DynamicLayoutPlan()
        previous: Optional[ColumnAssignment] = None
        for label in run.phase_labels():
            phase_trace = run.phase_trace(label)
            profile = session.profile(phase_trace, units, by_address=True)
            fresh = session.plan_from_profile(self.config, profile, units)
            if previous is None:
                plan.phases.append(
                    PhasePlan(
                        label=label,
                        assignment=fresh,
                        remapped=True,
                        reuse_cost=None,
                        fresh_cost=fresh.predicted_cost,
                    )
                )
                previous = fresh
                continue
            reuse_cost = self._evaluate_reuse(
                profile, units, previous, graph_provider=session.graph
            )
            if (
                reuse_cost is not None
                and reuse_cost - fresh.predicted_cost <= self.remap_threshold
            ):
                plan.phases.append(
                    PhasePlan(
                        label=label,
                        assignment=previous,
                        remapped=False,
                        reuse_cost=reuse_cost,
                        fresh_cost=fresh.predicted_cost,
                    )
                )
            else:
                plan.phases.append(
                    PhasePlan(
                        label=label,
                        assignment=fresh,
                        remapped=True,
                        reuse_cost=reuse_cost,
                        fresh_cost=fresh.predicted_cost,
                    )
                )
                previous = fresh
        return plan

    def _evaluate_reuse(
        self,
        profile,
        units,
        previous: ColumnAssignment,
        graph_provider=None,
    ) -> Optional[int]:
        """Predicted W of keeping ``previous`` for this phase's profile."""
        return evaluate_reuse_cost(
            profile, units, previous, graph_provider=graph_provider
        )

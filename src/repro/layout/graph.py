"""The weighted conflict graph G(V, E, W) of paper Section 3.1.

Vertices are layout units (variables or column-sized subarrays); the
weight of edge ``(v_i, v_j)`` models the cost of placing both in the
same column.  Zero-weight edges are dropped at construction, matching
the paper ("prior to coloring, we will delete all zero-weight edges").

Vertex merging (used by the Section 3.1.2 heuristic) contracts an edge:
the merged vertex inherits the union of neighbors with summed weights,
and the contracted edge's weight is accumulated into
``internal_cost`` — the part of W already committed by forcing those
variables to share a column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

import numpy as np

from repro.profiling.profiler import ProfileLike

MERGE_SEPARATOR = "+"


@dataclass(frozen=True)
class VertexInfo:
    """One conflict-graph vertex.

    Attributes:
        name: Vertex name (merged vertices join member names with '+').
        size: Total footprint in bytes.
        access_count: Total accesses.
        members: The original layout-unit names inside this vertex.
    """

    name: str
    size: int
    access_count: int
    members: tuple[str, ...]


class ConflictGraph:
    """Undirected weighted graph over layout units."""

    def __init__(
        self,
        vertices: dict[str, VertexInfo],
        weights: dict[frozenset[str], int],
        internal_cost: int = 0,
    ):
        for edge in weights:
            if len(edge) != 2:
                raise ValueError(f"edge {set(edge)} must join two vertices")
            for endpoint in edge:
                if endpoint not in vertices:
                    raise ValueError(f"edge endpoint {endpoint!r} not a vertex")
        self._vertices = dict(vertices)
        self._weights = {
            edge: weight for edge, weight in weights.items() if weight > 0
        }
        self.internal_cost = internal_cost

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_profile(
        cls,
        profile: ProfileLike,
        variables: Optional[Iterable[str]] = None,
        weight_fn: Optional[Callable[[str, str], int]] = None,
    ) -> "ConflictGraph":
        """Build the graph from a profile.

        ``variables`` restricts the vertex set (default: every profiled
        variable); ``weight_fn`` overrides the paper's MIN rule (used
        by the weight-metric ablation).

        With the default MIN rule and a measured profile (one exposing
        ``weight_matrix``), every pairwise weight is computed in one
        vectorized pass; a custom ``weight_fn`` — or a profile without
        position arrays, such as the estimated
        :class:`~repro.profiling.static_analysis.StaticProfile` —
        falls back to the per-pair loop, which the differential suite
        also uses as the bit-identical reference.
        """
        names = list(variables) if variables is not None else list(
            profile.variables
        )
        vertices = {}
        for name in names:
            stats = profile.variables[name]
            vertices[name] = VertexInfo(
                name=name,
                size=stats.size,
                access_count=stats.access_count,
                members=(name,),
            )
        weights: dict[frozenset[str], int] = {}
        matrix_fn = getattr(profile, "weight_matrix", None)
        if weight_fn is None and callable(matrix_fn):
            matrix = matrix_fn(names)
            rows, cols = np.nonzero(np.triu(matrix, 1))
            for first, second in zip(rows.tolist(), cols.tolist()):
                weights[frozenset((names[first], names[second]))] = int(
                    matrix[first, second]
                )
            return cls(vertices, weights)
        weigh = weight_fn if weight_fn is not None else profile.pair_weight
        for index, first in enumerate(names):
            for second in names[index + 1:]:
                weight = weigh(first, second)
                if weight > 0:
                    weights[frozenset((first, second))] = weight
        return cls(vertices, weights)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def vertex_names(self) -> list[str]:
        """All vertex names."""
        return list(self._vertices)

    def vertex(self, name: str) -> VertexInfo:
        """Vertex info by name."""
        return self._vertices[name]

    def edges(self) -> list[tuple[str, str, int]]:
        """All (nonzero) edges as sorted (a, b, weight) triples."""
        result = []
        for edge, weight in self._weights.items():
            first, second = sorted(edge)
            result.append((first, second, weight))
        result.sort()
        return result

    def weight(self, first: str, second: str) -> int:
        """Edge weight (0 if absent)."""
        return self._weights.get(frozenset((first, second)), 0)

    def neighbors(self, name: str) -> set[str]:
        """Vertices joined to ``name`` by a positive-weight edge."""
        found = set()
        for edge in self._weights:
            if name in edge:
                (other,) = edge - {name}
                found.add(other)
        return found

    def adjacency(self) -> dict[str, set[str]]:
        """name -> neighbor set, for the coloring routines."""
        adjacency: dict[str, set[str]] = {
            name: set() for name in self._vertices
        }
        for edge in self._weights:
            first, second = tuple(edge)
            adjacency[first].add(second)
            adjacency[second].add(first)
        return adjacency

    def total_weight(self) -> int:
        """Sum of all edge weights."""
        return sum(self._weights.values())

    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self._vertices)

    def edge_count(self) -> int:
        """Number of positive-weight edges."""
        return len(self._weights)

    def min_weight_edge(self) -> tuple[str, str, int]:
        """The minimum-weight edge (ties broken lexicographically).

        Raises ValueError when the graph has no edges.
        """
        if not self._weights:
            raise ValueError("graph has no edges")
        best = min(
            self._weights.items(),
            key=lambda item: (item[1], tuple(sorted(item[0]))),
        )
        first, second = sorted(best[0])
        return first, second, best[1]

    # ------------------------------------------------------------------
    # Contraction and cost
    # ------------------------------------------------------------------
    def merge(self, first: str, second: str) -> "ConflictGraph":
        """Contract the edge (first, second) into one vertex.

        The new vertex is named ``first+second``; its edges carry the
        summed weights of the endpoints' edges, and the contracted
        weight moves into ``internal_cost``.
        """
        if first not in self._vertices or second not in self._vertices:
            raise KeyError(f"unknown vertices {first!r}/{second!r}")
        if first == second:
            raise ValueError("cannot merge a vertex with itself")
        info_a = self._vertices[first]
        info_b = self._vertices[second]
        merged = VertexInfo(
            name=f"{first}{MERGE_SEPARATOR}{second}",
            size=info_a.size + info_b.size,
            access_count=info_a.access_count + info_b.access_count,
            members=info_a.members + info_b.members,
        )
        vertices = {
            name: info
            for name, info in self._vertices.items()
            if name not in (first, second)
        }
        vertices[merged.name] = merged

        weights: dict[frozenset[str], int] = {}
        internal = self.internal_cost
        for edge, weight in self._weights.items():
            if edge == frozenset((first, second)):
                internal += weight
                continue
            endpoints = set(edge)
            renamed = frozenset(
                merged.name if endpoint in (first, second) else endpoint
                for endpoint in endpoints
            )
            weights[renamed] = weights.get(renamed, 0) + weight
        return ConflictGraph(vertices, weights, internal_cost=internal)

    def monochromatic_cost(self, coloring: dict[str, int]) -> int:
        """The paper's objective W for a coloring of *this* graph.

        ``W = sum of w(e_j) over edges whose endpoints share a color``,
        plus any cost already internalized by merges.
        """
        cost = self.internal_cost
        for edge, weight in self._weights.items():
            first, second = tuple(edge)
            if coloring[first] == coloring[second]:
                cost += weight
        return cost

    def __repr__(self) -> str:
        return (
            f"ConflictGraph({self.vertex_count()} vertices, "
            f"{self.edge_count()} edges, internal={self.internal_cost})"
        )

"""The data-layout algorithm (paper Section 3): the core contribution.

Pipeline:

1. :mod:`repro.layout.partition` — split arrays larger than a column
   into column-sized subarrays (Step 1).
2. Build the weighted conflict graph ``G(V, E, W)`` from a profile
   (:mod:`repro.layout.graph`) with ``w(v_i, v_j) = MIN(n_j_i, n_i_j)``.
3. Color it with ``k`` colors minimizing the monochromatic weight
   ``W``: exact minimum coloring after zero-edge deletion
   (:mod:`repro.layout.coloring`), merging the minimum-weight edge and
   re-coloring while the chromatic number exceeds ``k``
   (:mod:`repro.layout.merge`).
4. Optionally pre-assign variables to ``p`` scratchpad columns and
   color the rest with ``k - p`` (Section 3.1.3).
5. Produce a :class:`~repro.layout.assignment.ColumnAssignment` that
   can be *realized* as page-table tints + tint-table bit vectors.

:class:`~repro.layout.algorithm.DataLayoutPlanner` runs the whole
pipeline; :class:`~repro.layout.dynamic.DynamicLayoutPlanner` re-plans
per program phase (Section 3.2).

The planner's predicted cost W also serves as a *demand model*
upstream: the phase-adaptive runtime's remap-benefit test
(:mod:`repro.runtime.policy`) and the fleet broker's per-tenant
column demand curves (:func:`repro.fleet.broker.demand_curve`) both
price column grants with it.
"""

from repro.layout.assignment import (
    ColumnAssignment,
    Disposition,
    VariablePlacement,
)
from repro.layout.algorithm import DataLayoutPlanner, LayoutConfig
from repro.layout.backends import (
    BeamBackend,
    CostModel,
    EvolutionaryBackend,
    PaperBackend,
    PlannerBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.layout.coloring import (
    chromatic_number,
    color_with_k,
    exact_coloring,
    greedy_coloring,
)
from repro.layout.dynamic import (
    DynamicLayoutPlan,
    DynamicLayoutPlanner,
    PhasePlan,
)
from repro.layout.graph import ConflictGraph, VertexInfo
from repro.layout.merge import MergeResult, color_with_merging
from repro.layout.partition import split_for_columns
from repro.layout.session import PlannerSession

__all__ = [
    "BeamBackend",
    "ColumnAssignment",
    "ConflictGraph",
    "CostModel",
    "DataLayoutPlanner",
    "Disposition",
    "DynamicLayoutPlan",
    "DynamicLayoutPlanner",
    "EvolutionaryBackend",
    "LayoutConfig",
    "MergeResult",
    "PaperBackend",
    "PhasePlan",
    "PlannerBackend",
    "PlannerSession",
    "VariablePlacement",
    "VertexInfo",
    "available_backends",
    "chromatic_number",
    "color_with_k",
    "color_with_merging",
    "exact_coloring",
    "get_backend",
    "greedy_coloring",
    "register_backend",
    "split_for_columns",
]

"""The end-to-end static data-layout algorithm (paper Section 3.1).

:class:`DataLayoutPlanner` chains the pipeline:

1. split oversized arrays into column-sized subarrays;
2. profile the trace against the split units (attribution by address);
3. pre-assign forced + high-benefit units to the ``p`` scratchpad
   columns (Section 3.1.3), honoring the one-to-one per-set packing
   constraint that scratchpad emulation requires;
4. build the conflict graph over the remaining units and color it with
   ``k - p`` colors via exact coloring + min-weight-edge merging;
5. emit a :class:`~repro.layout.assignment.ColumnAssignment`.

The ``weight_metric`` and ``merge_strategy`` knobs exist for the
ablation benches; the defaults are the paper's choices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.layout.assignment import (
    ColumnAssignment,
    Disposition,
    VariablePlacement,
)
from repro.layout.backends import available_backends, get_backend
from repro.layout.coloring import DEFAULT_NODE_BUDGET
from repro.layout.graph import ConflictGraph
from repro.layout.partition import split_for_columns
from repro.mem.symbols import SymbolTable, Variable
from repro.profiling.profiler import Profile, ProfileLike, profile_trace
from repro.utils.bitvector import ColumnMask
from repro.utils.validation import check_positive
from repro.workloads.base import WorkloadRun


@dataclass(frozen=True)
class LayoutConfig:
    """Parameters of the layout algorithm.

    Attributes:
        columns: Total columns k.
        column_bytes: Bytes per column (S).
        line_size: Cache-line size (for scratchpad set packing).
        scratchpad_columns: Columns p reserved as scratchpad; the
            remaining k - p are cache columns.
        forced_scratchpad: Variable names pre-assigned to scratchpad
            (paper Section 3.1.3); an error if they do not fit.
        split_oversized: Apply the Step-1 splitting.
        pin_subarrays: False (the paper's model) pins only *whole*
            variables in scratchpad — "a data structure that does not
            fit in the scratchpad ... cannot be assigned to the
            scratchpad" (Section 1.1).  True enables our extension of
            pinning individual column-sized subarrays.
        weight_metric: "min" (paper), "sum", or "unweighted" (ablation).
        merge_strategy: "exact" (paper), "greedy", or "random".
        backend: Which layout-search engine colors the conflict graph
            (see :mod:`repro.layout.backends`): "paper" (Section
            3.1.2, the default), "beam", or "evolutionary".
        beam_width: Surviving states per step of the beam backend.
        evolution_population / evolution_generations: Genome pool size
            and generation count of the evolutionary backend.
        exact_node_budget: Search-node budget per exact-coloring
            attempt; on exhaustion the paper backend degrades to
            greedy DSATUR with a warning instead of hanging.
        widen_partitions: When the coloring uses fewer colors than the
            available cache columns, hand the spare columns to the
            busiest partitions (the paper's "aggregating columns into
            partitions, we can provide set-associativity within
            partitions as well as increase the size of partitions").
            Off by default — footnote 2 restricts the paper's own
            experiments to single columns.
        seed: Seed for stochastic strategies.
    """

    columns: int
    column_bytes: int
    line_size: int = 16
    scratchpad_columns: int = 0
    forced_scratchpad: tuple[str, ...] = ()
    split_oversized: bool = True
    pin_subarrays: bool = False
    weight_metric: str = "min"
    merge_strategy: str = "exact"
    widen_partitions: bool = False
    seed: int = 0
    backend: str = "paper"
    beam_width: int = 8
    evolution_population: int = 32
    evolution_generations: int = 60
    exact_node_budget: int = DEFAULT_NODE_BUDGET

    def __post_init__(self) -> None:
        check_positive(self.columns, "columns")
        check_positive(self.column_bytes, "column_bytes")
        if not 0 <= self.scratchpad_columns <= self.columns:
            raise ValueError(
                f"scratchpad_columns must be in [0, {self.columns}], "
                f"got {self.scratchpad_columns}"
            )
        if self.weight_metric not in ("min", "sum", "unweighted"):
            raise ValueError(
                f"unknown weight metric {self.weight_metric!r}"
            )
        if self.backend not in available_backends():
            raise ValueError(
                f"unknown planner backend {self.backend!r}; "
                f"choose from {available_backends()}"
            )

    @property
    def sets(self) -> int:
        """Sets per column (``column_bytes // line_size``).

        The canonical cache-geometry vocabulary is ``columns`` /
        ``sets`` / ``line_size`` (see
        :class:`~repro.cache.geometry.CacheGeometry`); the layout
        algorithm natively thinks in per-column bytes (the paper's S),
        so this derived accessor bridges the two.
        """
        return self.column_bytes // self.line_size

    @property
    def cache_columns(self) -> int:
        """Columns available for normal caching (k - p)."""
        return self.columns - self.scratchpad_columns

    @property
    def scratchpad_mask(self) -> ColumnMask:
        """Scratchpad occupies the high-numbered columns."""
        return ColumnMask.contiguous(
            self.cache_columns, self.scratchpad_columns, self.columns
        )


class _ScratchpadPacker:
    """Tracks per-set slot usage in the scratchpad columns.

    With p scratchpad columns each cache set offers p pinned-line
    slots; a unit is packable only if, for every set, the lines it adds
    keep the count within p (otherwise pinned lines would evict each
    other and the region stops being scratchpad).
    """

    def __init__(self, sets: int, line_size: int, slots: int):
        self.sets = sets
        self.line_size = line_size
        self.slots = slots
        self._used = [0] * max(sets, 1)

    def _set_counts(self, variable: Variable) -> dict[int, int]:
        counts: dict[int, int] = {}
        for line_base in variable.range.lines(self.line_size):
            set_index = (line_base // self.line_size) % self.sets
            counts[set_index] = counts.get(set_index, 0) + 1
        return counts

    def fits(self, variable: Variable) -> bool:
        """True if the unit can be pinned without slot overflow."""
        if self.slots == 0:
            return False
        return all(
            self._used[set_index] + count <= self.slots
            for set_index, count in self._set_counts(variable).items()
        )

    def add(self, variable: Variable) -> None:
        """Commit the unit's lines."""
        for set_index, count in self._set_counts(variable).items():
            self._used[set_index] += count


@dataclass
class DataLayoutPlanner:
    """Runs the complete static layout algorithm.

    ``graph_provider`` (optional) supplies conflict graphs instead of
    building them inline — the hook
    :class:`~repro.layout.session.PlannerSession` uses to serve
    repeated plans of identical phases from its content-addressed
    cache.  It is consulted only for the default MIN weight metric;
    ablation metrics always build their graphs directly.
    """

    config: LayoutConfig
    graph_provider: Optional[
        Callable[[ProfileLike, tuple[str, ...]], ConflictGraph]
    ] = None
    _last_merge_log: list[tuple[str, str, int]] = field(
        default_factory=list, init=False, repr=False
    )

    def _build_graph(
        self, profile: ProfileLike, names: list[str]
    ) -> ConflictGraph:
        """The conflict graph over ``names`` (provider-aware)."""
        weight_fn = self._weight_function(profile)
        if weight_fn is None and self.graph_provider is not None:
            return self.graph_provider(profile, tuple(names))
        return ConflictGraph.from_profile(
            profile, variables=names, weight_fn=weight_fn
        )

    def plan(self, run: WorkloadRun) -> ColumnAssignment:
        """Plan a layout for a recorded workload run."""
        symbols = run.memory_map.symbols
        units = (
            split_for_columns(symbols, self.config.column_bytes)
            if self.config.split_oversized
            else symbols
        )
        profile = profile_trace(run.trace, units, by_address=True)
        return self.plan_from_profile(profile, units)

    def plan_from_profile(
        self, profile: ProfileLike, units: SymbolTable
    ) -> ColumnAssignment:
        """Plan a layout from an existing profile of the layout units.

        Every profiled variable must be a unit in ``units``: a name
        mismatch (e.g. a whole-variable profile against split units)
        would silently produce an empty layout, so it is an error.
        """
        config = self.config
        missing = sorted(
            name
            for name, stats in profile.variables.items()
            if stats.access_count > 0 and name not in units
        )
        if missing:
            raise ValueError(
                f"profiled variables {missing} are not layout units; "
                "profile the trace against the same (split) symbol "
                "table the planner uses"
            )
        accessed = [
            units.get(name)
            for name in profile.variables
            if name in units
        ]
        accessed.sort(key=lambda unit: unit.base)

        pinned = self._select_scratchpad(profile, accessed)
        remaining = [
            unit for unit in accessed if unit.name not in pinned
        ]

        placements: dict[str, VariablePlacement] = {}
        scratchpad_mask = config.scratchpad_mask
        for name in pinned:
            placements[name] = VariablePlacement(
                variable=units.get(name),
                disposition=Disposition.SCRATCHPAD,
                mask=scratchpad_mask,
            )

        predicted_cost = 0
        merges: list[tuple[str, str, int]] = []
        if config.cache_columns == 0:
            for unit in remaining:
                placements[unit.name] = VariablePlacement(
                    variable=unit,
                    disposition=Disposition.UNCACHED,
                    mask=ColumnMask.none(config.columns),
                )
        elif remaining:
            graph = self._build_graph(
                profile, [unit.name for unit in remaining]
            )
            result = get_backend(config.backend).solve(
                graph, config.cache_columns, config
            )
            predicted_cost = result.cost
            merges = result.merges
            color_columns = self._columns_per_color(
                profile, remaining, result.assignment
            )
            for unit in remaining:
                color = result.assignment[unit.name]
                placements[unit.name] = VariablePlacement(
                    variable=unit,
                    disposition=Disposition.CACHED,
                    mask=ColumnMask.from_columns(
                        color_columns[color], width=config.columns
                    ),
                )

        return ColumnAssignment(
            columns=config.columns,
            column_bytes=config.column_bytes,
            line_size=config.line_size,
            scratchpad_mask=scratchpad_mask,
            placements=placements,
            layout_symbols=units,
            predicted_cost=predicted_cost,
            merges=merges,
        )

    # ------------------------------------------------------------------
    # Partition widening (Section 2.2 aggregation; optional)
    # ------------------------------------------------------------------
    def _columns_per_color(
        self,
        profile: ProfileLike,
        remaining: list[Variable],
        assignment: dict[str, int],
    ) -> dict[int, list[int]]:
        """Map each color to its cache column(s).

        Color i starts with column i.  With ``widen_partitions`` on,
        spare columns go one at a time to the partition with the most
        accesses per column — growing both its capacity and its
        associativity, per the paper's aggregation remark.
        """
        config = self.config
        colors = sorted(set(assignment.values()))
        columns: dict[int, list[int]] = {
            color: [index] for index, color in enumerate(colors)
        }
        spare = list(range(len(colors), config.cache_columns))
        if not config.widen_partitions or not spare:
            return columns
        accesses: dict[int, int] = {color: 0 for color in colors}
        for unit in remaining:
            accesses[assignment[unit.name]] += profile.variables[
                unit.name
            ].access_count
        for column in spare:
            busiest = max(
                colors,
                key=lambda color: accesses[color] / len(columns[color]),
            )
            columns[busiest].append(column)
        return columns

    # ------------------------------------------------------------------
    # Scratchpad selection (Section 3.1.3 + benefit-driven packing)
    # ------------------------------------------------------------------
    def _select_scratchpad(
        self, profile: ProfileLike, accessed: list[Variable]
    ) -> set[str]:
        config = self.config
        if config.scratchpad_columns == 0:
            if config.forced_scratchpad:
                raise ValueError(
                    "forced_scratchpad given but scratchpad_columns is 0"
                )
            return set()
        sets = config.column_bytes // config.line_size
        packer = _ScratchpadPacker(
            sets=sets,
            line_size=config.line_size,
            slots=config.scratchpad_columns,
        )

        # Pinning granularity: whole variables (paper), where a split
        # variable's subarrays form one all-or-nothing group; or
        # individual subarrays (our extension).
        groups: dict[str, list[Variable]] = {}
        for unit in accessed:
            if config.pin_subarrays:
                key = unit.name
            else:
                key = unit.parent or unit.name
            groups.setdefault(key, []).append(unit)

        def group_fits(units: list[Variable]) -> bool:
            probe = _ScratchpadPacker(
                sets=sets,
                line_size=config.line_size,
                slots=config.scratchpad_columns,
            )
            probe._used = list(packer._used)
            for unit in units:
                if not probe.fits(unit):
                    return False
                probe.add(unit)
            return True

        def commit(units: list[Variable]) -> None:
            for unit in units:
                packer.add(unit)
                pinned.update(unit.name for unit in units)

        def group_density(units: list[Variable]) -> float:
            accesses = sum(
                profile.variables[unit.name].access_count for unit in units
            )
            size = sum(unit.size for unit in units)
            return accesses / size if size else 0.0

        pinned: set[str] = set()
        for name in config.forced_scratchpad:
            if name not in groups:
                raise KeyError(
                    f"forced scratchpad variable {name!r} is not an "
                    "accessed layout unit or variable"
                )
            if not group_fits(groups[name]):
                raise ValueError(
                    f"forced scratchpad variable {name!r} does not fit "
                    f"the {config.scratchpad_columns} scratchpad columns"
                )
            commit(groups[name])

        # Benefit-driven fill: highest access density first (the same
        # criterion Panda et al. use for scratchpad allocation).
        candidates = sorted(
            (
                (key, units)
                for key, units in groups.items()
                if not any(unit.name in pinned for unit in units)
            ),
            key=lambda item: (-group_density(item[1]), item[0]),
        )
        for _, units in candidates:
            if group_density(units) <= 0.0:
                continue
            if group_fits(units):
                commit(units)
        return pinned

    # ------------------------------------------------------------------
    # Weight metrics (ablation)
    # ------------------------------------------------------------------
    def _weight_function(
        self, profile: ProfileLike
    ) -> Optional[Callable[[str, str], int]]:
        metric = self.config.weight_metric
        if metric == "min":
            return None  # the profile's own MIN rule

        def overlap_counts(first: str, second: str):
            stats_a = profile.variables[first]
            stats_b = profile.variables[second]
            overlap = stats_a.lifetime.intersection(stats_b.lifetime)
            if overlap is None:
                return None

            def count(stats) -> float:
                if len(stats.positions):
                    return stats.accesses_in(overlap)
                if stats.lifetime.length == 0:
                    return 0.0
                return (
                    stats.access_count
                    * overlap.length
                    / stats.lifetime.length
                )

            return count(stats_a), count(stats_b)

        if metric == "sum":

            def weigh_sum(first: str, second: str) -> int:
                counts = overlap_counts(first, second)
                if counts is None:
                    return 0
                return int(round(counts[0] + counts[1]))

            return weigh_sum

        def weigh_flat(first: str, second: str) -> int:
            counts = overlap_counts(first, second)
            if counts is None or (counts[0] == 0 and counts[1] == 0):
                return 0
            return 1

        return weigh_flat


def plan_layout(
    run: WorkloadRun,
    columns: int,
    column_bytes: int,
    scratchpad_columns: int = 0,
    **kwargs,
) -> ColumnAssignment:
    """Convenience one-call planner.

    Call as ``plan_layout(run, columns=4, column_bytes=512)``.
    """
    config = LayoutConfig(
        columns=columns,
        column_bytes=column_bytes,
        scratchpad_columns=scratchpad_columns,
        **kwargs,
    )
    return DataLayoutPlanner(config).plan(run)

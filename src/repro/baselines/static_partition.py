"""Static scratchpad/cache partitions: the design-time baseline.

A conventional embedded SoC fixes the scratchpad/cache split in
silicon.  This module sweeps every split for a workload (re-running the
data-layout algorithm per split, as the paper does for Figure 4) and
reports the whole curve — the column cache's advantage is exactly that
it does not have to commit to one point of this curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.layout.algorithm import DataLayoutPlanner, LayoutConfig
from repro.layout.assignment import ColumnAssignment
from repro.sim.config import TimingConfig
from repro.sim.executor import TraceExecutor
from repro.sim.results import SimulationResult
from repro.workloads.base import WorkloadRun


@dataclass
class PartitionPoint:
    """One static partition's outcome."""

    cache_columns: int
    scratchpad_columns: int
    result: SimulationResult
    assignment: ColumnAssignment

    @property
    def cycles(self) -> int:
        """Measured cycles at this partition."""
        return self.result.cycles


def sweep_static_partitions(
    run: WorkloadRun,
    columns: int,
    column_bytes: int,
    timing: Optional[TimingConfig] = None,
    split_oversized: bool = False,
    line_size: int = 16,
) -> list[PartitionPoint]:
    """Evaluate every scratchpad/cache split for one workload.

    Returns one :class:`PartitionPoint` per cache-column count
    0..columns, data layout re-planned at each point.
    """
    executor = TraceExecutor(timing)
    points = []
    for cache_columns in range(columns + 1):
        config = LayoutConfig(
            columns=columns,
            column_bytes=column_bytes,
            line_size=line_size,
            scratchpad_columns=columns - cache_columns,
            split_oversized=split_oversized,
        )
        assignment = DataLayoutPlanner(config).plan(run)
        result = executor.run(run.trace, assignment)
        points.append(
            PartitionPoint(
                cache_columns=cache_columns,
                scratchpad_columns=columns - cache_columns,
                result=result,
                assignment=assignment,
            )
        )
    return points


def best_partition(points: list[PartitionPoint]) -> PartitionPoint:
    """The partition with the fewest cycles."""
    if not points:
        raise ValueError("no partition points")
    return min(points, key=lambda point: point.cycles)

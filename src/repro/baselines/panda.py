"""A Panda/Dutt/Nicolau-style scratchpad allocator (paper Section 5.2).

"The presented algorithm assumes a fixed amount of scratchpad memory
and a fixed-size cache, identifies critical variables and assigns them
to scratchpad memory."

This baseline models that architecture: a *dedicated* scratchpad SRAM
(its own address region, data explicitly copied in) next to a
conventional set-associative cache with no column control.  Variables
are chosen for the scratchpad by access density (accesses per byte),
the standard benefit metric; everything else goes through the cache
with no placement restriction.

Differences from the paper's column cache, which the comparison bench
surfaces:

* the split is fixed — no per-task repartitioning;
* re-assigning a variable to scratchpad requires a memory copy
  (charged via ``copy_byte_cycles``), where a column remap is a tint
  write;
* the cache side has no conflict isolation at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cache.fastsim import FastColumnCache
from repro.cache.geometry import CacheGeometry
from repro.mem.symbols import Variable
from repro.sim.config import TimingConfig
from repro.sim.results import SimulationResult
from repro.workloads.base import WorkloadRun


@dataclass
class PandaPlan:
    """The allocator's decision.

    Attributes:
        scratchpad_variables: Names assigned to the scratchpad SRAM.
        scratchpad_bytes: Bytes they occupy.
        copy_cycles: One-time cost of copying them in.
    """

    scratchpad_variables: list[str] = field(default_factory=list)
    scratchpad_bytes: int = 0
    copy_cycles: int = 0


class PandaBaseline:
    """Dedicated scratchpad + conventional cache.

    Args:
        scratchpad_bytes: Size of the dedicated SRAM.
        cache_geometry: Shape of the conventional cache.
        timing: Stall model (miss penalty etc.).
        copy_byte_cycles: Cycles per byte for the explicit copy into
            scratchpad (reported as setup, like preload).
    """

    def __init__(
        self,
        scratchpad_bytes: int,
        cache_geometry: CacheGeometry,
        timing: Optional[TimingConfig] = None,
        copy_byte_cycles: int = 1,
    ):
        self.scratchpad_bytes = scratchpad_bytes
        self.cache_geometry = cache_geometry
        self.timing = timing or TimingConfig()
        self.copy_byte_cycles = copy_byte_cycles

    # ------------------------------------------------------------------
    def plan(self, run: WorkloadRun) -> PandaPlan:
        """Pick scratchpad residents by access density (whole variables)."""
        counts: dict[str, int] = {}
        for name in run.trace.variables():
            counts[name] = len(run.trace.positions_of(name))
        candidates: list[Variable] = [
            run.memory_map.get(name)
            for name in counts
            if name in run.memory_map.symbols
        ]
        candidates.sort(
            key=lambda variable: (
                -(counts[variable.name] / variable.size),
                variable.base,
            )
        )
        plan = PandaPlan()
        free = self.scratchpad_bytes
        for variable in candidates:
            if counts[variable.name] == 0:
                continue
            if variable.size <= free:
                plan.scratchpad_variables.append(variable.name)
                plan.scratchpad_bytes += variable.size
                free -= variable.size
        plan.copy_cycles = plan.scratchpad_bytes * self.copy_byte_cycles
        return plan

    # ------------------------------------------------------------------
    def run(
        self, run: WorkloadRun, plan: Optional[PandaPlan] = None
    ) -> SimulationResult:
        """Simulate the workload under the Panda architecture."""
        if plan is None:
            plan = self.plan(run)
        trace = run.trace
        # Per-access scratchpad membership, resolved by variable label.
        pad_ids = {
            trace.variable_names.index(name)
            for name in plan.scratchpad_variables
            if name in trace.variable_names
        }
        in_pad = (
            np.isin(trace.variable_ids, list(pad_ids))
            if pad_ids
            else np.zeros(len(trace), dtype=bool)
        )
        cached_positions = np.flatnonzero(~in_pad)
        blocks = (
            trace.addresses[cached_positions]
            >> self.cache_geometry.offset_bits
        )
        cache = FastColumnCache(self.cache_geometry)
        outcome = cache.run(blocks.tolist())
        timing = self.timing
        return SimulationResult(
            name=f"{run.name}:panda",
            instructions=trace.instruction_count,
            accesses=len(trace),
            cached_accesses=len(cached_positions),
            scratchpad_accesses=int(in_pad.sum()),
            hits=outcome.hits,
            misses=outcome.misses,
            cycles=(
                trace.instruction_count
                + outcome.misses * timing.miss_penalty
            ),
            setup_cycles=plan.copy_cycles,
        )

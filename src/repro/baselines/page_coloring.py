"""OS page coloring (paper Section 5.1).

"Page coloring refers to intelligent mapping of virtual pages to
physical pages to reduce conflicts in a direct-mapped cache and thus
offers a limited sub-set of column caching abilities ...  page coloring
requires a memory copy to remap a region of memory to a new region of
the cache ...  [and] works [less] well with set-associative caches,
where page coloring potentially wastes a significant amount of space."

The model: a physically-indexed cache has ``page_colors =
column_bytes / page_size`` page-color classes per way; a physical
page's color decides which cache sets it occupies.  The OS chooses a
physical page (hence a color) for each virtual page.  We reuse the
conflict-graph machinery to assign each *variable* a color class, then
relocate its pages to physical pages of that class and simulate the
relocated trace on the plain cache.

What the comparison surfaces:

* with enough colors, page coloring isolates conflicting variables
  much like columns — but at page granularity within a way;
* *remapping* a variable to a new color means copying its pages
  (charged via ``copy_byte_cycles``), against a column cache's
  tint-table write;
* the isolation divides each way's sets, so a colored variable only
  ever occupies ``1/page_colors`` of the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cache.fastsim import FastColumnCache
from repro.cache.geometry import CacheGeometry
from repro.layout.graph import ConflictGraph
from repro.layout.merge import color_with_merging
from repro.profiling.profiler import profile_trace
from repro.sim.config import TimingConfig
from repro.sim.results import SimulationResult
from repro.utils.validation import check_power_of_two, log2_exact
from repro.workloads.base import WorkloadRun


@dataclass
class PageColoringPlan:
    """Variable -> page-color class, plus the page relocation map."""

    colors: int
    variable_colors: dict[str, int] = field(default_factory=dict)
    page_map: dict[int, int] = field(default_factory=dict)
    remap_copy_bytes: int = 0


class PageColoringBaseline:
    """Page-colored physical placement over a conventional cache."""

    def __init__(
        self,
        cache_geometry: CacheGeometry,
        page_size: int = 64,
        timing: Optional[TimingConfig] = None,
        copy_byte_cycles: int = 1,
    ):
        check_power_of_two(page_size, "page_size")
        if page_size > cache_geometry.column_bytes:
            raise ValueError(
                f"page size {page_size} exceeds one way "
                f"({cache_geometry.column_bytes} bytes): no colors exist"
            )
        self.cache_geometry = cache_geometry
        self.page_size = page_size
        self.timing = timing or TimingConfig()
        self.copy_byte_cycles = copy_byte_cycles
        self.page_colors = cache_geometry.column_bytes // page_size

    # ------------------------------------------------------------------
    def plan(self, run: WorkloadRun) -> PageColoringPlan:
        """Color variables with the conflict-graph machinery."""
        profile = profile_trace(
            run.trace, run.memory_map.symbols, by_address=True
        )
        names = list(profile.variables)
        plan = PageColoringPlan(colors=self.page_colors)
        if not names:
            return plan
        graph = ConflictGraph.from_profile(profile, variables=names)
        result = color_with_merging(graph, k=self.page_colors)
        plan.variable_colors = dict(result.assignment)
        self._build_page_map(run, plan)
        return plan

    def _build_page_map(self, run: WorkloadRun, plan: PageColoringPlan) -> None:
        """Relocate each variable's pages into its color class.

        Physical page ``p`` has color ``p % page_colors``.  Each
        variable's k-th page moves to the k-th free physical page of
        the variable's color.
        """
        next_free: dict[int, int] = {
            color: 0 for color in range(self.page_colors)
        }
        page_bits = log2_exact(self.page_size, "page_size")
        for name, color in sorted(plan.variable_colors.items()):
            variable = run.memory_map.get(name)
            for vpn in variable.range.pages(self.page_size):
                if vpn in plan.page_map:
                    continue
                frame_index = next_free[color]
                next_free[color] += 1
                # Physical frame number with the requested color.
                pfn = frame_index * self.page_colors + color
                plan.page_map[vpn] = pfn
                plan.remap_copy_bytes += self.page_size
        # Unmapped pages (unattributed traffic) keep identity mapping;
        # handled lazily in translate().
        self._page_bits = page_bits

    def translate(self, addresses: np.ndarray, plan: PageColoringPlan) -> np.ndarray:
        """Apply the virtual -> physical page map to a trace."""
        page_bits = log2_exact(self.page_size, "page_size")
        vpns = addresses >> page_bits
        offsets = addresses & (self.page_size - 1)
        translated = np.empty_like(addresses)
        # Identity for unmapped pages, with a high bit to keep them
        # clear of the colored frames.
        identity_base = 1 << 40
        for index, vpn in enumerate(vpns):
            pfn = plan.page_map.get(int(vpn))
            if pfn is None:
                translated[index] = identity_base + int(addresses[index])
            else:
                translated[index] = (pfn << page_bits) | int(offsets[index])
        return translated

    # ------------------------------------------------------------------
    def run(
        self,
        run: WorkloadRun,
        plan: Optional[PageColoringPlan] = None,
        charge_initial_copies: bool = False,
    ) -> SimulationResult:
        """Simulate the workload with page-colored placement.

        ``charge_initial_copies=True`` charges the copy cost of moving
        every colored page (the cost page coloring pays to *change* a
        mapping; initial placement is normally free because the OS
        allocates colored frames up front).
        """
        if plan is None:
            plan = self.plan(run)
        trace = run.trace
        physical = self.translate(trace.addresses, plan)
        cache = FastColumnCache(self.cache_geometry)
        blocks = physical >> self.cache_geometry.offset_bits
        outcome = cache.run(blocks.tolist())
        timing = self.timing
        setup = (
            plan.remap_copy_bytes * self.copy_byte_cycles
            if charge_initial_copies
            else 0
        )
        return SimulationResult(
            name=f"{run.name}:page_coloring",
            instructions=trace.instruction_count,
            accesses=len(trace),
            cached_accesses=len(trace),
            hits=outcome.hits,
            misses=outcome.misses,
            cycles=(
                trace.instruction_count
                + outcome.misses * timing.miss_penalty
            ),
            setup_cycles=setup,
        )

    def run_uncolored(self, run: WorkloadRun) -> SimulationResult:
        """Control: the same cache with identity (uncolored) placement."""
        cache = FastColumnCache(self.cache_geometry)
        blocks = run.trace.addresses >> self.cache_geometry.offset_bits
        outcome = cache.run(blocks.tolist())
        return SimulationResult(
            name=f"{run.name}:uncolored",
            instructions=run.trace.instruction_count,
            accesses=len(run.trace),
            cached_accesses=len(run.trace),
            hits=outcome.hits,
            misses=outcome.misses,
            cycles=(
                run.trace.instruction_count
                + outcome.misses * self.timing.miss_penalty
            ),
        )

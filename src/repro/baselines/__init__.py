"""Baselines the paper compares against (Sections 1.1 and 5).

* :mod:`repro.baselines.static_partition` — a fixed scratchpad/cache
  split chosen at design time (the Panda et al. design-space premise
  the paper's introduction argues against).
* :mod:`repro.baselines.panda` — a Panda/Dutt/Nicolau-style allocator:
  a *dedicated* scratchpad SRAM plus a conventional set-associative
  cache, with variables assigned to the scratchpad by access density.
* :mod:`repro.baselines.page_coloring` — OS page coloring: conflict
  avoidance via physical page placement, "a limited sub-set of column
  caching abilities" (Section 5.1) — remapping requires memory copies
  and the granularity is the page-color class, not the column.
"""

from repro.baselines.page_coloring import PageColoringBaseline
from repro.baselines.panda import PandaBaseline, PandaPlan
from repro.baselines.static_partition import (
    PartitionPoint,
    sweep_static_partitions,
)

__all__ = [
    "PageColoringBaseline",
    "PandaBaseline",
    "PandaPlan",
    "PartitionPoint",
    "sweep_static_partitions",
]

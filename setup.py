"""Legacy setup shim.

The metadata lives in pyproject.toml; this file exists only so that
``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (offline editable installs).
"""

from setuptools import setup

setup()

"""Shared Hypothesis strategies for the differential-testing harness.

Every simulator backend in this repository models the *same* machine:
the reference :class:`~repro.cache.column_cache.ColumnCache`, the
scalar :class:`~repro.cache.fastsim.FastColumnCache`, the lockstep
kernel in :mod:`repro.sim.engine.batched`, the set-sharded runner and
the adaptive runtime must all produce bit-identical hit/miss streams
on any trace.  These strategies generate the random inputs the
differential suites drive them with; keeping them here means a new
backend gets the whole oracle battery by adding one test that imports
them (see ``docs/testing.md``).

Strategies:

* :func:`small_geometries` — cache shapes small enough to force
  evictions within short traces.
* :func:`block_trace_cases` — (geometry, blocks, mask_bits) triples
  with skewed block distributions and occasional empty masks.
* :func:`sharded_replay_cases` — (geometry, trace, shards, chunk)
  draws whose shard counts and chunk sizes bracket the degenerate
  boundaries of the set-sharded single-point simulators.
* :func:`random_workload` — a memory map + interleaved trace over
  2-5 variables plus a (scratchpad, split) layout draw, as used by
  the executor equivalence suite.
* :func:`phased_workload` — a workload whose trace rotates through
  random per-phase variable subsets (for the adaptive runtime).
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.mem.layout import MemoryMap
from repro.trace.trace import Trace, TraceBuilder
from repro.workloads.base import (
    PhaseMarker,
    WorkloadRun,
    legacy_trace_builder,
)
from repro.workloads.suite import available_workloads, make_workload

#: Downsized constructor kwargs so whole-suite differential sweeps
#: stay fast; workloads not listed record at their defaults.
SUITE_SMALL_KWARGS: dict[str, dict[str, int]] = {
    "fir": {"signal_length": 256, "tap_count": 16},
    "gzip": {"input_bytes": 1024},
    "iir": {"signal_length": 512, "sections": 2},
    "packet": {"batches": 1, "rounds": 2},
    "mpeg_app": {"blocks": 2, "frames": 1},
    "conv2d": {"width": 16, "height": 16},
    "scan": {"buffer_bytes": 4096, "passes": 2},
}

#: Per-variable mask palette the suite oracle rotates through —
#: includes the empty mask, so bypasses are exercised on real traces.
MASK_PALETTE = (0b1111, 0b0011, 0b0110, 0b0000, 0b1000)


def suite_cases() -> list[tuple[str, dict[str, int]]]:
    """Every registered workload with differential-suite-sized kwargs."""
    return [
        (name, SUITE_SMALL_KWARGS.get(name, {}))
        for name in available_workloads()
    ]


def record_suite_case(
    name: str, kwargs: dict[str, int], legacy: bool = False
) -> WorkloadRun:
    """Record one suite workload via the columnar or legacy recorder."""
    if legacy:
        with legacy_trace_builder():
            return make_workload(name, **kwargs).record()
    return make_workload(name, **kwargs).record()


def suite_variable_masks(trace: Trace, columns: int) -> dict[str, int]:
    """The per-variable mask assignment behind :func:`suite_mask_bits`.

    Exposed separately so runners that accept ``variable_masks``
    mappings (the set-sharded single-point simulators) can be driven
    with exactly the masks the per-access oracles used.
    """
    full = (1 << columns) - 1
    return {
        variable: MASK_PALETTE[index % len(MASK_PALETTE)] & full
        for index, variable in enumerate(trace.variables())
    }


def suite_mask_bits(trace: Trace, columns: int) -> np.ndarray:
    """Deterministic per-access masks: palette rotated per variable.

    Unlabelled accesses get the full mask; every mask value is taken
    modulo the cache's column count so small geometries stay valid.
    """
    full = (1 << columns) - 1
    return trace.mask_bits_for(
        suite_variable_masks(trace, columns), default=full
    )


@st.composite
def small_geometries(draw) -> CacheGeometry:
    """Small geometries: 2-8 sets, 1-8 columns, 16/32-byte lines."""
    return CacheGeometry(
        line_size=draw(st.sampled_from([16, 32])),
        sets=draw(st.sampled_from([2, 4, 8])),
        columns=draw(st.sampled_from([1, 2, 3, 4, 8])),
    )


@st.composite
def block_trace_cases(draw, max_length: int = 400):
    """A (geometry, blocks, mask_bits) case for the cache oracles.

    Blocks are drawn from a span a few times the cache size so sets
    see real contention; each access's mask is drawn from a small
    palette (including sometimes the empty mask, which must bypass).
    """
    geometry = draw(small_geometries())
    length = draw(st.integers(1, max_length))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    span = geometry.total_lines * draw(st.sampled_from([1, 2, 4]))
    blocks = rng.integers(0, max(span, 2), length).astype(np.int64)
    full = (1 << geometry.columns) - 1
    palette_size = draw(st.integers(1, 4))
    include_empty = draw(st.booleans())
    palette = [
        int(rng.integers(0, full + 1)) for _ in range(palette_size)
    ] or [full]
    if not include_empty:
        palette = [bits or full for bits in palette]
    mask_bits = [
        palette[int(rng.integers(0, len(palette)))] for _ in range(length)
    ]
    return geometry, blocks.tolist(), mask_bits


@st.composite
def sharded_replay_cases(draw, max_length: int = 500):
    """A ``(geometry, trace, shards, chunk_accesses)`` case.

    Drives the set-sharded single-point simulators: shard counts
    deliberately bracket the set count (1, ``sets - 1``, ``sets``,
    ``sets + 3`` — degenerate partitions a merge bug would hide in)
    and chunk sizes bracket the trace length (1, ``len - 1``,
    ``len``, ``len + 1`` plus a mid-trace splitter), so every
    chunk-boundary alignment the streaming path can see is produced.
    The merged tallies must equal the unsharded run on every draw.
    """
    geometry = draw(small_geometries())
    length = draw(st.integers(2, max_length))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    span = geometry.total_lines * draw(st.sampled_from([1, 2, 4]))
    addresses = (
        rng.integers(0, max(span, 2), length).astype(np.int64)
        * geometry.line_size
    )
    trace = Trace.from_columns(addresses, name="sharded-case")
    sets = geometry.sets
    shards = draw(
        st.sampled_from(sorted({1, max(sets - 1, 1), sets, sets + 3}))
    )
    chunk = draw(
        st.sampled_from(
            sorted(
                {1, max(length - 1, 1), length, length + 1,
                 max(length // 3, 1)}
            )
        )
    )
    return geometry, trace, shards, chunk


@st.composite
def random_workload(draw, max_length: int = 300):
    """A random memory map + trace over 2-5 variables.

    Returns ``(run, scratchpad_columns, split_oversized)`` — the
    contract the executor equivalence suite was built on.
    """
    variable_count = draw(st.integers(2, 5))
    memory_map = MemoryMap(base=0x10000, page_size=64, page_aligned=True)
    sizes = [
        draw(st.sampled_from([32, 64, 128, 256, 640]))
        for _ in range(variable_count)
    ]
    variables = [
        memory_map.allocate_array(f"v{index}", size // 2)
        for index, size in enumerate(sizes)
    ]
    length = draw(st.integers(10, max_length))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(name="random")
    for _ in range(length):
        variable = variables[int(rng.integers(0, variable_count))]
        index = int(rng.integers(0, variable.element_count))
        builder.add_gap(int(rng.integers(0, 3)))
        builder.append(
            variable.address_of(index),
            is_write=bool(rng.random() < 0.3),
            variable=variable.name,
        )
    run = WorkloadRun(
        name="random", trace=builder.build(), memory_map=memory_map
    )
    scratchpad = draw(st.integers(0, 4))
    split = draw(st.booleans())
    return run, scratchpad, split


@st.composite
def fleet_scenario(draw):
    """A small multi-tenant fleet: geometry, events, scheduling knobs.

    Used by the fleet differential suite: the lockstep and reference
    executors must agree per access on any scenario this produces —
    including arrivals/departures that cut scheduling windows short
    and broker rebalances that rewrite tints mid-run.
    """
    geometry = CacheGeometry(
        line_size=16,
        sets=draw(st.sampled_from([4, 8])),
        columns=draw(st.sampled_from([2, 4, 8])),
    )
    tenant_count = draw(st.integers(1, 3))
    horizon = draw(st.integers(1_500, 6_000))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    events = []
    for index in range(tenant_count):
        memory_map = MemoryMap(
            base=0x10000, page_size=64, page_aligned=True
        )
        variables = [
            memory_map.allocate_array(
                f"t{index}v{v}", draw(st.sampled_from([16, 32, 64]))
            )
            for v in range(draw(st.integers(1, 3)))
        ]
        builder = TraceBuilder(name=f"tenant{index}")
        for position in range(draw(st.integers(30, 200))):
            variable = variables[int(rng.integers(0, len(variables)))]
            builder.add_gap(int(rng.integers(0, 3)))
            builder.append(
                variable.address_of(
                    int(rng.integers(0, variable.element_count))
                ),
                is_write=bool(rng.random() < 0.2),
                variable=variable.name,
            )
        run = WorkloadRun(
            name=f"tenant{index}",
            trace=builder.build(),
            memory_map=memory_map,
        )
        from repro.fleet import FleetEvent, TenantSpec

        spec = TenantSpec(
            name=f"tenant{index}",
            run=run,
            priority=draw(st.integers(1, 3)),
            address_offset=index << 32,
        )
        arrival = draw(st.integers(0, horizon // 2))
        events.append(
            FleetEvent(time=arrival, kind="arrival", spec=spec)
        )
        if draw(st.booleans()):
            departure = arrival + draw(st.integers(1, horizon))
            if departure < horizon:
                events.append(
                    FleetEvent(
                        time=departure,
                        kind="departure",
                        tenant=spec.name,
                    )
                )
    events.sort(key=lambda event: event.time)
    from repro.fleet import FleetConfig, FleetTrace

    fleet = FleetTrace(
        events=tuple(events), horizon_instructions=horizon
    )
    config = FleetConfig(
        quantum_instructions=draw(st.sampled_from([16, 64, 256])),
        window_instructions=draw(st.sampled_from([256, 1024])),
        min_detect_accesses=draw(st.sampled_from([8, 64])),
    )
    return geometry, fleet, config


@st.composite
def phased_workload(draw, max_phases: int = 4):
    """A workload whose access stream rotates through phase subsets.

    Each phase interleaves a random subset of the variables (looped
    scans plus noise), so working sets genuinely shift — the input
    shape the adaptive runtime exists for.
    """
    variable_count = draw(st.integers(3, 6))
    memory_map = MemoryMap(base=0x10000, page_size=64, page_aligned=True)
    variables = [
        memory_map.allocate_array(
            f"v{index}", draw(st.sampled_from([64, 128, 256]))
        )
        for index in range(variable_count)
    ]
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(name="phased")
    phases: list[PhaseMarker] = []
    phase_count = draw(st.integers(1, max_phases))
    for phase_index in range(phase_count):
        subset_size = draw(st.integers(1, variable_count))
        subset = [
            variables[i]
            for i in rng.choice(
                variable_count, size=subset_size, replace=False
            )
        ]
        length = draw(st.integers(20, 200))
        start = len(builder)
        for position in range(length):
            variable = subset[position % len(subset)]
            if rng.random() < 0.8:  # looped scan with some noise
                index = position % variable.element_count
            else:
                index = int(rng.integers(0, variable.element_count))
            builder.add_gap(int(rng.integers(0, 2)))
            builder.append(
                variable.address_of(index),
                is_write=bool(rng.random() < 0.2),
                variable=variable.name,
            )
        phases.append(
            PhaseMarker(f"phase{phase_index}", start, len(builder))
        )
    return WorkloadRun(
        name="phased",
        trace=builder.build(),
        memory_map=memory_map,
        phases=phases,
    )

"""Tests for trace storage, builder, generators, dinero I/O, filters."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.address import AddressRange
from repro.trace.access import MemoryAccess
from repro.trace.dinero import load_trace, save_trace
from repro.trace.filters import (
    concatenate,
    filter_by_range,
    filter_by_variable,
    relocate,
)
from repro.trace.generator import (
    looped_working_set,
    pointer_chase,
    random_uniform,
    sequential_stream,
    strided_stream,
    zipf_accesses,
)
from repro.trace.trace import Trace, TraceBuilder


class TestBuilder:
    def test_gap_attaches_to_next_access(self):
        builder = TraceBuilder()
        builder.add_gap(3)
        builder.append(0x100, variable="a")
        builder.append(0x104, variable="a")
        trace = builder.build()
        assert list(trace.gaps) == [3, 0]
        assert trace.instruction_count == 5

    def test_negative_gap_rejected(self):
        builder = TraceBuilder()
        with pytest.raises(ValueError):
            builder.add_gap(-1)

    def test_negative_address_rejected(self):
        builder = TraceBuilder()
        with pytest.raises(ValueError):
            builder.append(-5)

    def test_variable_interning(self):
        builder = TraceBuilder()
        builder.append(0, variable="a")
        builder.append(4, variable="b")
        builder.append(8, variable="a")
        trace = builder.build()
        assert trace.variables() == ["a", "b"]
        assert trace.variable_of(2) == "a"

    def test_unlabelled_access(self):
        builder = TraceBuilder()
        builder.append(0)
        assert builder.build().variable_of(0) is None

    def test_pending_gap_visible(self):
        builder = TraceBuilder()
        builder.add_gap(2)
        assert builder.pending_gap == 2

    def test_extend(self):
        first = TraceBuilder()
        first.append(0, variable="a")
        second = TraceBuilder()
        second.add_gap(1)
        second.append(4, variable="b")
        first.extend(second.build())
        trace = first.build()
        assert len(trace) == 2
        assert trace.instruction_count == 3


class TestTrace:
    def build(self):
        builder = TraceBuilder(name="t")
        for index in range(10):
            builder.add_gap(1)
            builder.append(
                index * 16,
                is_write=(index % 2 == 1),
                variable="even" if index % 2 == 0 else "odd",
            )
        return builder.build()

    def test_access_at(self):
        trace = self.build()
        access = trace.access_at(3)
        assert access == MemoryAccess(48, True, "odd", 1)
        assert access.instructions == 2

    def test_positions_of(self):
        trace = self.build()
        assert list(trace.positions_of("even")) == [0, 2, 4, 6, 8]
        assert list(trace.positions_of("missing")) == []

    def test_slice(self):
        trace = self.build()
        piece = trace.slice(2, 5)
        assert len(piece) == 3
        assert piece.access_at(0).address == 32

    def test_repeat(self):
        trace = self.build()
        doubled = trace.repeat(2)
        assert len(doubled) == 20
        assert doubled.access_at(10).address == 0

    def test_repeat_invalid(self):
        with pytest.raises(ValueError):
            self.build().repeat(0)

    def test_iteration(self):
        trace = self.build()
        assert len(list(trace)) == 10

    def test_from_accesses_round_trip(self):
        accesses = [
            MemoryAccess(0, False, "a", 2),
            MemoryAccess(16, True, None, 0),
        ]
        trace = Trace.from_accesses(accesses)
        assert [trace.access_at(i) for i in range(2)] == accesses

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            Trace(
                np.zeros(2, dtype=np.int64),
                np.zeros(1, dtype=bool),
                np.zeros(2, dtype=np.int64),
                np.zeros(2, dtype=np.int64),
                [],
            )

    def test_empty(self):
        trace = Trace.empty()
        assert len(trace) == 0
        assert trace.instruction_count == 0


class TestGenerators:
    def test_sequential(self):
        trace = sequential_stream(0x100, 4, element_size=2)
        assert list(trace.addresses) == [0x100, 0x102, 0x104, 0x106]

    def test_strided(self):
        trace = strided_stream(0, 3, stride=64)
        assert list(trace.addresses) == [0, 64, 128]

    def test_looped_working_set(self):
        trace = looped_working_set(0, working_set_bytes=8, passes=3,
                                   element_size=2)
        assert len(trace) == 12
        assert trace.addresses[0] == trace.addresses[4]

    def test_random_uniform_deterministic(self):
        first = random_uniform(0, 256, 50, seed=3)
        second = random_uniform(0, 256, 50, seed=3)
        assert list(first.addresses) == list(second.addresses)

    def test_random_uniform_bounds(self):
        trace = random_uniform(0x1000, 128, 100, seed=0)
        assert trace.addresses.min() >= 0x1000
        assert trace.addresses.max() < 0x1080

    def test_random_write_fraction(self):
        trace = random_uniform(0, 256, 400, seed=1, write_fraction=0.5)
        writes = trace.writes.sum()
        assert 100 < writes < 300

    def test_zipf_concentration(self):
        trace = zipf_accesses(0, 4096, 2000, exponent=2.0, seed=0)
        values, counts = np.unique(trace.addresses, return_counts=True)
        # The hottest element dominates under a steep Zipf.
        assert counts.max() > len(trace) * 0.3

    def test_zipf_rejects_exponent(self):
        with pytest.raises(ValueError):
            zipf_accesses(0, 64, 10, exponent=1.0)

    def test_pointer_chase_visits_all_nodes(self):
        trace = pointer_chase(0, node_count=16, hops=16, seed=2)
        assert len(set(trace.addresses.tolist())) == 16


class TestDinero:
    def test_round_trip_with_extensions(self):
        builder = TraceBuilder()
        builder.add_gap(3)
        builder.append(0x1000, is_write=True, variable="block")
        builder.append(0x2000)
        trace = builder.build()
        buffer = io.StringIO()
        save_trace(trace, buffer)
        loaded = load_trace(io.StringIO(buffer.getvalue()))
        assert list(loaded.addresses) == [0x1000, 0x2000]
        assert list(loaded.writes) == [True, False]
        assert loaded.variable_of(0) == "block"
        assert loaded.instruction_count == trace.instruction_count

    def test_plain_two_column_format(self):
        loaded = load_trace(io.StringIO("0 1f0\n1 200\n2 300\n"))
        assert list(loaded.addresses) == [0x1F0, 0x200, 0x300]
        assert list(loaded.writes) == [False, True, False]

    def test_comments_and_blanks_ignored(self):
        loaded = load_trace(io.StringIO("# header\n\n0 10\n"))
        assert len(loaded) == 1

    def test_bad_label(self):
        with pytest.raises(ValueError, match="unknown access label"):
            load_trace(io.StringIO("7 100\n"))

    def test_bad_address(self):
        with pytest.raises(ValueError, match="bad address"):
            load_trace(io.StringIO("0 zz\n"))

    def test_bad_gap(self):
        with pytest.raises(ValueError, match="bad gap"):
            load_trace(io.StringIO("0 10 xx\n"))

    def test_short_line(self):
        with pytest.raises(ValueError, match="expected"):
            load_trace(io.StringIO("0\n"))

    def test_file_round_trip(self, tmp_path):
        trace = sequential_stream(0, 5)
        path = tmp_path / "trace.din"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert list(loaded.addresses) == list(trace.addresses)


@given(
    entries=st.lists(
        st.tuples(
            st.integers(0, 2**30),
            st.booleans(),
            st.integers(0, 50),
            st.sampled_from(["a", "b", None]),
        ),
        max_size=40,
    )
)
@settings(max_examples=30, deadline=None)
def test_dinero_round_trip_property(entries):
    builder = TraceBuilder()
    for address, is_write, gap, variable in entries:
        builder.add_gap(gap)
        builder.append(address, is_write=is_write, variable=variable)
    trace = builder.build()
    buffer = io.StringIO()
    save_trace(trace, buffer)
    loaded = load_trace(io.StringIO(buffer.getvalue()))
    assert list(loaded.addresses) == list(trace.addresses)
    assert list(loaded.writes) == list(trace.writes)
    assert list(loaded.gaps) == list(trace.gaps)
    assert [loaded.variable_of(i) for i in range(len(loaded))] == [
        trace.variable_of(i) for i in range(len(trace))
    ]


class TestFilters:
    def build(self):
        builder = TraceBuilder()
        for index in range(8):
            builder.add_gap(2)
            builder.append(
                index * 16, variable="a" if index % 2 == 0 else "b"
            )
        return builder.build()

    def test_filter_by_variable(self):
        trace = self.build()
        only_a = filter_by_variable(trace, ["a"])
        assert len(only_a) == 4
        assert all(only_a.variable_of(i) == "a" for i in range(4))

    def test_filter_preserves_instruction_count(self):
        """Dropped accesses' instructions fold into following gaps."""
        trace = self.build()
        only_a = filter_by_variable(trace, ["a"])
        # The final b access's instructions are lost (nothing follows),
        # otherwise counts are preserved.
        dropped_tail = 3  # gap 2 + access 1 of the last b
        assert only_a.instruction_count == trace.instruction_count - dropped_tail

    def test_filter_by_range(self):
        trace = self.build()
        piece = filter_by_range(trace, AddressRange(0x20, 0x20))
        assert list(piece.addresses) == [0x20, 0x30]

    def test_filter_all_kept_returns_same(self):
        trace = self.build()
        assert filter_by_variable(trace, ["a", "b"]) is trace

    def test_relocate(self):
        trace = self.build()
        moved = relocate(trace, 0x1000)
        assert moved.addresses[0] == 0x1000
        assert list(moved.gaps) == list(trace.gaps)

    def test_relocate_negative_rejected(self):
        trace = self.build()
        with pytest.raises(ValueError):
            relocate(trace, -0x1000)

    def test_concatenate_merges_variable_tables(self):
        first = sequential_stream(0, 3, variable="x")
        second = sequential_stream(64, 3, variable="y")
        joined = concatenate([first, second])
        assert len(joined) == 6
        assert joined.variable_of(0) == "x"
        assert joined.variable_of(3) == "y"

    def test_concatenate_shared_variable_names(self):
        first = sequential_stream(0, 2, variable="x")
        second = sequential_stream(64, 2, variable="x")
        joined = concatenate([first, second])
        assert joined.variables() == ["x"]
        assert len(joined.positions_of("x")) == 4

    def test_concatenate_empty(self):
        assert len(concatenate([])) == 0

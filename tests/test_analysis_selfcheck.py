"""Tier-1 gate: ``repro lint`` must run clean on this repository.

The analysis subsystem is only honest if the tree it ships in passes
it.  This suite runs the full rule set over ``src/repro`` exactly as
the CLI does and fails on any finding that is neither suppressed
inline (with a reason) nor grandfathered in the checked-in baseline —
so a regression in determinism, cache-key coverage, FFI sync, await
discipline, or env pinning fails the ordinary test run, not just CI.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, default_rules
from repro.analysis.cli import main as lint_main
from repro.analysis.findings import (
    BASELINE_NAME,
    SUPPRESSION_PATTERN,
    load_baseline,
    partition_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SOURCE_ROOT = REPO_ROOT / "src" / "repro"


@pytest.fixture(scope="module")
def report():
    """One full-analysis run shared by the checks below."""
    return analyze_paths(
        [SOURCE_ROOT], root=REPO_ROOT, rules=default_rules()
    )


def test_source_tree_is_clean(report):
    """No findings beyond the baseline anywhere under src/repro."""
    baseline = load_baseline(REPO_ROOT / BASELINE_NAME)
    new, _ = partition_baseline(list(report.findings), baseline)
    assert new == [], "\n" + "\n".join(
        finding.render() for finding in new
    )


def test_analysis_covers_the_tree(report):
    """The run actually visited the codebase, not an empty glob."""
    assert report.files > 100


def test_baseline_is_empty_or_justified():
    """Grandfathered debt must carry a written justification."""
    payload = json.loads(
        (REPO_ROOT / BASELINE_NAME).read_text(encoding="utf-8")
    )
    assert payload["version"] == 1
    for entry in payload["findings"]:
        assert entry.get("justification", "").strip(), (
            f"baseline entry without justification: {entry}"
        )


def test_every_inline_suppression_has_a_reason():
    """``# repro: ignore[...]`` without ``-- reason`` is a smell."""
    bare: list[str] = []
    for path in sorted(SOURCE_ROOT.rglob("*.py")):
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            match = SUPPRESSION_PATTERN.search(line)
            if match is None:
                continue
            tail = line[match.end():]
            if not re.match(r"\s*--\s*\S", tail):
                bare.append(f"{path.relative_to(REPO_ROOT)}:{number}")
    assert bare == [], (
        "suppressions without a reason string: " + ", ".join(bare)
    )


def test_cli_gate_passes(capsys):
    """The exact CI invocation exits 0 on this tree."""
    assert lint_main([]) == 0
    out = capsys.readouterr().out
    assert "clean:" in out

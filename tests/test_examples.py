"""Smoke tests: the example scripts run and print what they promise."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 180) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "hot data after the stream: 32/32" in output
        assert "pinned after 2000 competing accesses -> True" in output
        assert "hit=True (no copy needed)" in output

    def test_mpeg_partitioning(self):
        output = run_example("mpeg_partitioning.py")
        assert "dequant" in output and "idct" in output
        assert "scratchpad" in output

    def test_compiler_flow(self):
        output = run_example("compiler_flow.py")
        assert "static estimates" in output
        assert "measured under the static plan" in output

    def test_dynamic_remapping(self):
        output = run_example("dynamic_remapping.py")
        assert "static (one layout) vs dynamic" in output
        assert "+32.7%" in output or "+" in output

    def test_two_level_hierarchy(self):
        output = run_example("two_level_hierarchy.py")
        assert "per-level tints" in output
        assert "98." in output or "99." in output or "100." in output

    @pytest.mark.slow
    def test_multitasking_predictability(self):
        output = run_example("multitasking_predictability.py", timeout=300)
        assert "predictable" in output

    def test_fleet_serving(self):
        output = run_example("fleet_serving.py")
        assert "broker vs shared cache" in output
        assert "at least as fast under the broker" in output
        assert "-> True" in output

    def test_fleet_service(self):
        output = run_example("fleet_service.py")
        assert "Poisson tenants across 4 shards" in output
        assert "0 violations" in output
        assert "disjoint under churn -> True" in output

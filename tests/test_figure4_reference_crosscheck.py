"""Cross-check: a Figure 4 sweep point through the full mechanism.

The figure experiments use the fast executor; this test re-runs one
representative partition point of each routine through the complete
TLB -> tint -> replacement-unit path and asserts identical cycles —
tying the headline results to the faithful hardware model.
"""

import pytest

from repro.layout.algorithm import DataLayoutPlanner, LayoutConfig
from repro.sim.config import EMBEDDED_TIMING
from repro.sim.executor import TraceExecutor
from repro.workloads.mpeg import DequantRoutine, IdctRoutine, PlusRoutine


@pytest.mark.parametrize(
    "factory,kwargs,scratchpad",
    [
        (DequantRoutine, {}, 4),       # the all-scratchpad optimum
        (DequantRoutine, {}, 0),       # the all-cache worst case
        (PlusRoutine, {}, 2),          # a middle point
        (IdctRoutine, {"blocks": 4}, 2),  # idct with spills possible
    ],
)
def test_sweep_point_matches_reference(factory, kwargs, scratchpad):
    run = factory(**kwargs).record()
    config = LayoutConfig(
        columns=4,
        column_bytes=512,
        scratchpad_columns=scratchpad,
        split_oversized=False,
    )
    assignment = DataLayoutPlanner(config).plan(run)
    executor = TraceExecutor(EMBEDDED_TIMING)
    fast = executor.run(run.trace, assignment)
    reference = executor.run_reference(run.trace, assignment)
    assert fast.cycles == reference.cycles
    assert fast.misses == reference.misses
    assert fast.uncached_accesses == reference.uncached_accesses

"""Deprecated config-field aliases: still work, always warn.

The naming pass (``repro.utils.aliases``) standardised the config
vocabulary; the old spellings stay accepted for one release but must
emit :class:`DeprecationWarning` both as constructor keywords and as
attribute reads.  Discovering the aliased classes through
``__deprecated_aliases__`` keeps this test in sync automatically: a
new ``@deprecated_aliases`` use is covered without editing the test.
"""

from __future__ import annotations

import warnings

import pytest

from repro.experiments.adaptive import WorkloadCase
from repro.experiments.figure5 import Figure5Config
from repro.runtime.adaptive import AdaptiveConfig
from repro.utils.aliases import deprecated_aliases

#: Every class carrying deprecated aliases, plus whatever required
#: fields it needs besides the aliased one.
ALIASED_CLASSES = {
    AdaptiveConfig: {},
    WorkloadCase: {"workload": "gzip"},
    Figure5Config: {},
}


def _cases():
    for cls, required in ALIASED_CLASSES.items():
        for old, new in cls.__deprecated_aliases__.items():
            yield pytest.param(
                cls, required, old, new, id=f"{cls.__name__}.{old}"
            )


@pytest.mark.parametrize("cls,required,old,new", _cases())
def test_constructor_alias_warns_and_forwards(cls, required, old, new):
    with pytest.warns(DeprecationWarning, match=old):
        instance = cls(**required, **{old: 4096})
    assert getattr(instance, new) == 4096


@pytest.mark.parametrize("cls,required,old,new", _cases())
def test_attribute_alias_warns_and_reads_canonical(
    cls, required, old, new
):
    instance = cls(**required, **{new: 4096})
    with pytest.warns(DeprecationWarning, match=new):
        assert getattr(instance, old) == 4096


@pytest.mark.parametrize("cls,required,old,new", _cases())
def test_passing_both_spellings_is_an_error(cls, required, old, new):
    with pytest.raises(TypeError, match=old):
        cls(**required, **{old: 4096, new: 4096})


@pytest.mark.parametrize("cls,required,old,new", _cases())
def test_canonical_name_does_not_warn(cls, required, old, new):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        instance = cls(**required, **{new: 4096})
        assert getattr(instance, new) == 4096


def test_decorator_registers_alias_table():
    @deprecated_aliases(old_knob="knob")
    class Plain:
        def __init__(self, knob=0):
            self.knob = knob

    assert Plain.__deprecated_aliases__ == {"old_knob": "knob"}
    with pytest.warns(DeprecationWarning):
        assert Plain(old_knob=3).knob == 3


def test_registered_classes_all_have_tables():
    for cls in ALIASED_CLASSES:
        assert cls.__deprecated_aliases__, cls.__name__


def test_expected_alias_vocabulary():
    """The naming pass's specific renames stay registered."""
    assert AdaptiveConfig.__deprecated_aliases__ == {
        "window_size": "window_accesses"
    }
    assert WorkloadCase.__deprecated_aliases__ == {
        "window_size": "window_accesses"
    }
    assert Figure5Config.__deprecated_aliases__ == {
        "budget_instructions": "horizon_instructions"
    }

"""Tests for the executors: fast path, reference path, equivalence."""

import pytest

from repro.layout.algorithm import DataLayoutPlanner, LayoutConfig
from repro.layout.dynamic import DynamicLayoutPlanner
from repro.sim.config import TimingConfig
from repro.sim.executor import TraceExecutor
from repro.workloads.base import Workload
from repro.workloads.mpeg import DequantRoutine, IdctRoutine, MPEGDecodeApp

TIMING = TimingConfig(
    miss_penalty=10, uncached_penalty=25, preload_line_cycles=10
)


class _Loop(Workload):
    def __init__(self, passes=3, **kwargs):
        super().__init__(name="loop", **kwargs)
        self.passes = passes
        self.hot = self.array("hot", 64)
        self.stream = self.array("stream", 512)

    def run(self) -> None:
        self.begin_phase("main")
        for _ in range(self.passes):
            for index in range(512):
                _ = self.stream[index]
                _ = self.hot[index % 64]
        self.end_phase()


def plan(run, scratchpad=0, **kwargs):
    config = LayoutConfig(
        columns=4, column_bytes=512, scratchpad_columns=scratchpad, **kwargs
    )
    return DataLayoutPlanner(config).plan(run)


class TestFastPath:
    def test_basic_accounting(self):
        run = _Loop().record()
        assignment = plan(run)
        result = TraceExecutor(TIMING).run(run.trace, assignment)
        assert result.accesses == len(run.trace)
        assert result.instructions == run.trace.instruction_count
        assert result.hits + result.misses == result.cached_accesses
        assert result.cycles == (
            result.instructions + TIMING.miss_penalty * result.misses
        )

    def test_scratchpad_accesses_cost_one_cycle(self):
        run = _Loop().record()
        pinned = plan(run, scratchpad=1)
        result = TraceExecutor(TIMING).run(run.trace, pinned)
        assert result.scratchpad_accesses > 0
        # Setup charged separately.
        assert result.setup_cycles == 64 * 2 // 16 * 10  # hot: 8 lines

    def test_cpi(self):
        run = _Loop().record()
        result = TraceExecutor(TIMING).run(run.trace, plan(run))
        assert result.cpi == result.cycles / result.instructions
        assert result.cpi >= 1.0

    def test_uncached_accounting(self):
        run = IdctRoutine(blocks=4).record()
        config = LayoutConfig(
            columns=4, column_bytes=512, scratchpad_columns=4,
            split_oversized=False,
        )
        assignment = DataLayoutPlanner(config).plan(run)
        result = TraceExecutor(TIMING).run(run.trace, assignment)
        assert result.uncached_accesses > 0
        assert result.cached_accesses == 0
        assert result.cycles == (
            result.instructions
            + TIMING.uncached_penalty * result.uncached_accesses
        )

    def test_geometry_for(self):
        run = _Loop().record()
        geometry = TraceExecutor.geometry_for(plan(run))
        assert geometry.total_bytes == 2048
        assert geometry.columns == 4


class TestReferenceEquivalence:
    @pytest.mark.parametrize("scratchpad", [0, 1, 2, 4])
    def test_loop_workload(self, scratchpad):
        run = _Loop(passes=2).record()
        assignment = plan(run, scratchpad=scratchpad)
        executor = TraceExecutor(TIMING)
        fast = executor.run(run.trace, assignment)
        reference = executor.run_reference(run.trace, assignment)
        assert fast.cycles == reference.cycles
        assert fast.hits == reference.hits
        assert fast.misses == reference.misses
        assert fast.uncached_accesses == reference.uncached_accesses
        assert fast.scratchpad_accesses == reference.scratchpad_accesses
        assert fast.setup_cycles == reference.setup_cycles

    @pytest.mark.parametrize("scratchpad", [0, 2])
    def test_dequant(self, scratchpad):
        run = DequantRoutine(blocks=4).record()
        assignment = plan(run, scratchpad=scratchpad, split_oversized=False)
        executor = TraceExecutor(TIMING)
        fast = executor.run(run.trace, assignment)
        reference = executor.run_reference(run.trace, assignment)
        assert fast.cycles == reference.cycles
        assert fast.misses == reference.misses

    def test_idct_with_uncached(self):
        run = IdctRoutine(blocks=2).record()
        config = LayoutConfig(
            columns=4, column_bytes=512, scratchpad_columns=3,
            split_oversized=False,
        )
        assignment = DataLayoutPlanner(config).plan(run)
        executor = TraceExecutor(TIMING)
        fast = executor.run(run.trace, assignment)
        reference = executor.run_reference(run.trace, assignment)
        assert fast.cycles == reference.cycles
        assert fast.uncached_accesses == reference.uncached_accesses

    def test_reference_reports_tlb_stats(self):
        run = _Loop().record()
        reference = TraceExecutor(TIMING).run_reference(
            run.trace, plan(run)
        )
        assert reference.tlb_hits + reference.tlb_misses == len(run.trace)
        assert reference.tlb_hits > reference.tlb_misses


class TestPhasedRuns:
    def test_phased_totals(self):
        run = MPEGDecodeApp(blocks=2, frames=1).record()
        config = LayoutConfig(
            columns=4, column_bytes=512, split_oversized=False
        )
        dynamic_plan = DynamicLayoutPlanner(config).plan(run)
        executor = TraceExecutor(TIMING)
        phased = executor.run_phased(run, dynamic_plan)
        assert len(phased.phases) == len(run.phases)
        total = phased.total
        assert total.accesses == len(run.trace)
        assert total.instructions == run.trace.instruction_count
        assert phased.remap_count >= 1

    def test_remap_cost_charged(self):
        run = MPEGDecodeApp(blocks=2, frames=1).record()
        config = LayoutConfig(
            columns=4, column_bytes=512, split_oversized=False,
            scratchpad_columns=1,
        )
        dynamic_plan = DynamicLayoutPlanner(config).plan(run)
        executor = TraceExecutor(TIMING)
        phased = executor.run_phased(run, dynamic_plan)
        remap_cycles = sum(p.remap_cycles for p in phased.phases)
        if phased.remap_count:
            assert remap_cycles > 0
        assert phased.total.cycles >= sum(
            p.result.cycles for p in phased.phases
        )

    def test_missing_phase_label_rejected(self):
        run = MPEGDecodeApp(blocks=1, frames=1).record()
        config = LayoutConfig(
            columns=4, column_bytes=512, split_oversized=False
        )
        dynamic_plan = DynamicLayoutPlanner(config).plan(run)
        dynamic_plan.phases = dynamic_plan.phases[:1]
        with pytest.raises(KeyError):
            TraceExecutor(TIMING).run_phased(run, dynamic_plan)

"""Run the doctest examples embedded in the library's docstrings.

Modules are auto-discovered by walking the ``repro`` package and
collecting every module whose docstrings carry ``>>>`` examples, so a
new (or newly documented) module can never silently skip collection —
which is exactly how the stale ``percentile`` example in
``repro.fleet.service.telemetry`` went unnoticed while the function
was off by one.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

# The hand-maintained list this file used to carry.  Discovery must
# always find at least these; the superset assertion below keeps the
# migration honest.
LEGACY_MODULES = frozenset(
    {
        "repro.utils.bitvector",
        "repro.utils.intervals",
        "repro.utils.tables",
        "repro.mem.address",
        "repro.mem.layout",
        "repro.mem.tint",
        "repro.cache.geometry",
        "repro.cache.replacement",
        "repro.cache.fastsim",
        "repro.cache.scratchpad",
        "repro.trace.trace",
        "repro.profiling.lifetime",
        "repro.layout.partition",
        "repro.workloads.suite",
    }
)


def _discover_modules_with_doctests() -> list[str]:
    """Every ``repro.*`` module carrying at least one ``>>>`` example."""
    finder = doctest.DocTestFinder(exclude_empty=True)
    names = ["repro"]
    for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        # Executable entry points (``python -m`` shims) emit
        # deprecation warnings on import; they carry no doctests.
        if name.endswith("__main__"):
            continue
        names.append(name)
    discovered = []
    for name in names:
        module = importlib.import_module(name)
        tests = finder.find(module, module=module)
        if any(test.examples for test in tests):
            discovered.append(name)
    return discovered


MODULES_WITH_DOCTESTS = _discover_modules_with_doctests()


def test_discovery_is_superset_of_legacy_list():
    missing = LEGACY_MODULES - set(MODULES_WITH_DOCTESTS)
    assert not missing, (
        f"auto-discovery lost modules the old hand list had: "
        f"{sorted(missing)}"
    )


def test_discovery_collects_service_telemetry():
    # The module whose stale percentile doctest never ran under the
    # hand-maintained list.
    assert "repro.fleet.service.telemetry" in MODULES_WITH_DOCTESTS


@pytest.mark.parametrize("module_name", MODULES_WITH_DOCTESTS)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, f"no doctests found in {module_name}"

"""Run the doctest examples embedded in the library's docstrings."""

import doctest
import importlib

import pytest

MODULES_WITH_DOCTESTS = [
    "repro.utils.bitvector",
    "repro.utils.intervals",
    "repro.utils.tables",
    "repro.mem.address",
    "repro.mem.layout",
    "repro.mem.tint",
    "repro.cache.geometry",
    "repro.cache.replacement",
    "repro.cache.fastsim",
    "repro.cache.scratchpad",
    "repro.trace.trace",
    "repro.profiling.lifetime",
    "repro.layout.partition",
    "repro.workloads.suite",
]


@pytest.mark.parametrize("module_name", MODULES_WITH_DOCTESTS)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, f"no doctests found in {module_name}"

"""Tests for cache statistics and simulation result containers."""

import pytest

from repro.cache.stats import CacheStats, MissKind, ShadowFullyAssociative
from repro.sim.results import PhasedRunResult, PhaseResult, SimulationResult


class TestCacheStats:
    def test_rates_empty(self):
        stats = CacheStats(columns=2)
        assert stats.hit_rate == 0.0
        assert stats.miss_rate == 0.0

    def test_record_hit_and_miss(self):
        stats = CacheStats(columns=2)
        stats.record_hit(0, is_write=False)
        stats.record_miss(is_write=True, kind=MissKind.COLD)
        assert stats.accesses == 2
        assert stats.hit_rate == 0.5
        assert stats.reads == 1 and stats.writes == 1
        assert stats.cold_misses == 1
        assert stats.per_column_hits == [1, 0]

    def test_reset_preserves_columns(self):
        stats = CacheStats(columns=3)
        stats.record_fill(2)
        stats.reset()
        assert stats.fills == 0
        assert stats.per_column_fills == [0, 0, 0]

    def test_snapshot_is_independent(self):
        stats = CacheStats(columns=1)
        snap = stats.snapshot()
        stats.record_fill(0)
        assert snap.fills == 0

    def test_delta_since(self):
        stats = CacheStats(columns=2)
        stats.record_hit(1, is_write=False)
        before = stats.snapshot()
        stats.record_hit(1, is_write=False)
        stats.record_eviction(dirty=True)
        delta = stats.delta_since(before)
        assert delta.hits == 1
        assert delta.writebacks == 1
        assert delta.per_column_hits == [0, 1]


class TestShadow:
    def test_lru_semantics(self):
        shadow = ShadowFullyAssociative(total_lines=2)
        assert not shadow.access(1)
        assert not shadow.access(2)
        assert shadow.access(1)       # refresh
        assert not shadow.access(3)   # evicts 2
        assert not shadow.access(2)
        assert shadow.access(3)

    def test_reset(self):
        shadow = ShadowFullyAssociative(total_lines=2)
        shadow.access(1)
        shadow.reset()
        assert not shadow.access(1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ShadowFullyAssociative(0)


class TestSimulationResult:
    def test_cpi_and_miss_rate(self):
        result = SimulationResult(
            name="t", instructions=200, cached_accesses=100, hits=90,
            misses=10, cycles=300,
        )
        assert result.cpi == 1.5
        assert result.miss_rate == 0.1

    def test_empty(self):
        result = SimulationResult(name="t")
        assert result.cpi == 0.0
        assert result.miss_rate == 0.0

    def test_total_cycles(self):
        result = SimulationResult(name="t", cycles=100, setup_cycles=20)
        assert result.total_cycles == 120

    def test_merged_with(self):
        first = SimulationResult(name="a", instructions=10, cycles=15,
                                 misses=2)
        second = SimulationResult(name="b", instructions=20, cycles=25,
                                  misses=3)
        merged = first.merged_with(second)
        assert merged.instructions == 30
        assert merged.cycles == 40
        assert merged.misses == 5
        assert merged.name == "a+b"


class TestPhasedRunResult:
    def test_total_includes_remap_cycles(self):
        phased = PhasedRunResult(name="app")
        phased.phases.append(
            PhaseResult(
                label="p1",
                result=SimulationResult(name="p1", instructions=10,
                                        cycles=12),
                remapped=True,
                remap_cycles=5,
            )
        )
        phased.phases.append(
            PhaseResult(
                label="p2",
                result=SimulationResult(name="p2", instructions=10,
                                        cycles=11),
                remapped=False,
            )
        )
        total = phased.total
        assert total.cycles == 12 + 11 + 5
        assert total.instructions == 20
        assert phased.remap_count == 1

    def test_empty_phases(self):
        phased = PhasedRunResult(name="empty")
        assert phased.total.cycles == 0
        assert phased.remap_count == 0

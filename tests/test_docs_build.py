"""The API-reference build gate, run as part of tier-1.

``docs/build_api_reference.py --check`` verifies three things: the
generated pages under ``docs/api/`` match the source (no stale docs),
every absolute ``repro.*`` cross-reference in the documented
docstrings resolves against the live import graph, and the strict
packages (``repro.sim.engine``, ``repro.runtime``, ``repro.fleet``)
have a docstring on every public object.  Running it here means a PR
cannot silently break the documentation site.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).parent.parent


def test_api_reference_fresh_and_resolvable():
    process = subprocess.run(
        [
            sys.executable,
            str(REPO / "docs" / "build_api_reference.py"),
            "--check",
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert process.returncode == 0, (
        "API reference check failed — regenerate with "
        "`python docs/build_api_reference.py` and commit:\n"
        + process.stderr
    )
    assert "api reference OK" in process.stdout

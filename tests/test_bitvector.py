"""Tests for column bit vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitvector import ColumnMask


class TestConstruction:
    def test_of_sets_requested_columns(self):
        mask = ColumnMask.of(0, 2, width=4)
        assert mask.columns() == (0, 2)

    def test_of_rejects_out_of_range_column(self):
        with pytest.raises(ValueError, match="out of range"):
            ColumnMask.of(4, width=4)

    def test_of_rejects_negative_column(self):
        with pytest.raises(ValueError, match="out of range"):
            ColumnMask.of(-1, width=4)

    def test_all_columns_is_full(self):
        assert ColumnMask.all_columns(4).is_full()

    def test_none_is_empty(self):
        assert ColumnMask.none(4).is_empty()

    def test_contiguous_range(self):
        mask = ColumnMask.contiguous(1, 2, width=4)
        assert mask.columns() == (1, 2)

    def test_contiguous_zero_count_is_empty(self):
        assert ColumnMask.contiguous(2, 0, width=4).is_empty()

    def test_contiguous_rejects_overflow(self):
        with pytest.raises(ValueError):
            ColumnMask.contiguous(3, 2, width=4)

    def test_width_zero_rejected(self):
        with pytest.raises(ValueError):
            ColumnMask(0, 0)

    def test_bits_outside_width_rejected(self):
        with pytest.raises(ValueError, match="outside width"):
            ColumnMask(0b10000, 4)

    def test_from_string_round_trip(self):
        mask = ColumnMask.of(0, 3, width=4)
        assert ColumnMask.from_string(mask.to_string()) == mask

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            ColumnMask.from_string("1 0 2")

    def test_from_columns_iterable(self):
        assert ColumnMask.from_columns([1, 3], width=4).columns() == (1, 3)


class TestSetAlgebra:
    def test_union(self):
        left = ColumnMask.of(0, width=4)
        right = ColumnMask.of(3, width=4)
        assert (left | right).columns() == (0, 3)

    def test_intersection(self):
        left = ColumnMask.of(0, 1, width=4)
        right = ColumnMask.of(1, 2, width=4)
        assert (left & right).columns() == (1,)

    def test_difference(self):
        left = ColumnMask.of(0, 1, width=4)
        right = ColumnMask.of(1, width=4)
        assert (left - right).columns() == (0,)

    def test_complement(self):
        mask = ColumnMask.of(1, width=4)
        assert mask.complement().columns() == (0, 2, 3)

    def test_overlaps(self):
        assert ColumnMask.of(1, width=4).overlaps(ColumnMask.of(1, 2, width=4))
        assert not ColumnMask.of(0, width=4).overlaps(ColumnMask.of(1, width=4))

    def test_issubset(self):
        assert ColumnMask.of(1, width=4).issubset(ColumnMask.of(1, 2, width=4))
        assert not ColumnMask.of(0, 1, width=4).issubset(
            ColumnMask.of(1, width=4)
        )

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="widths differ"):
            ColumnMask.of(0, width=4).union(ColumnMask.of(0, width=8))

    def test_with_and_without_column(self):
        mask = ColumnMask.of(0, width=4).with_column(2)
        assert mask.columns() == (0, 2)
        assert mask.without_column(0).columns() == (2,)


class TestAccessors:
    def test_lowest(self):
        assert ColumnMask.of(2, 3, width=4).lowest() == 2

    def test_lowest_of_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            ColumnMask.none(4).lowest()

    def test_count_and_len(self):
        mask = ColumnMask.of(0, 1, 3, width=4)
        assert mask.count() == 3
        assert len(mask) == 3

    def test_contains_and_in(self):
        mask = ColumnMask.of(1, width=4)
        assert mask.contains(1)
        assert 1 in mask
        assert 0 not in mask
        assert "x" not in mask

    def test_to_string_matches_paper_figure3_style(self):
        assert ColumnMask.of(1, width=4).to_string() == "0 1 0 0"

    def test_hash_and_equality(self):
        assert ColumnMask.of(1, width=4) == ColumnMask.of(1, width=4)
        assert hash(ColumnMask.of(1, width=4)) == hash(ColumnMask.of(1, width=4))
        assert ColumnMask.of(1, width=4) != ColumnMask.of(1, width=8)

    def test_iteration_order_is_ascending(self):
        assert list(ColumnMask.of(3, 0, 2, width=5)) == [0, 2, 3]


@given(bits=st.integers(min_value=0, max_value=255))
def test_complement_is_involution(bits):
    mask = ColumnMask(bits, 8)
    assert mask.complement().complement() == mask


@given(bits=st.integers(min_value=0, max_value=255))
def test_union_with_complement_is_full(bits):
    mask = ColumnMask(bits, 8)
    assert (mask | mask.complement()).is_full()
    assert (mask & mask.complement()).is_empty()


@given(
    first=st.integers(min_value=0, max_value=255),
    second=st.integers(min_value=0, max_value=255),
)
def test_de_morgan(first, second):
    a = ColumnMask(first, 8)
    b = ColumnMask(second, 8)
    assert (a | b).complement() == a.complement() & b.complement()


@given(bits=st.integers(min_value=0, max_value=2**12 - 1))
def test_columns_round_trip(bits):
    mask = ColumnMask(bits, 12)
    assert ColumnMask.from_columns(mask.columns(), 12) == mask

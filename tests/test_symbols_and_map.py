"""Tests for variables, the symbol table and the memory map."""

import pytest

from repro.mem.address import AddressRange
from repro.mem.layout import MemoryMap
from repro.mem.symbols import SymbolTable, Variable, VariableKind


class TestVariable:
    def test_element_count(self):
        v = Variable("a", AddressRange(0, 128), element_size=2)
        assert v.element_count == 64

    def test_size_must_be_multiple_of_element(self):
        with pytest.raises(ValueError, match="multiple"):
            Variable("a", AddressRange(0, 129), element_size=2)

    def test_address_of(self):
        v = Variable("a", AddressRange(0x100, 64), element_size=4)
        assert v.address_of(0) == 0x100
        assert v.address_of(3) == 0x10C

    def test_address_of_out_of_range(self):
        v = Variable("a", AddressRange(0, 8), element_size=4)
        with pytest.raises(IndexError):
            v.address_of(2)

    def test_split_small_returns_self(self):
        v = Variable("a", AddressRange(0, 64), element_size=2)
        assert v.split(512) == [v]

    def test_split_names_and_parent(self):
        v = Variable("big", AddressRange(0, 1024), element_size=2)
        pieces = v.split(512)
        assert [p.name for p in pieces] == ["big#0", "big#1"]
        assert all(p.parent == "big" for p in pieces)

    def test_split_keeps_element_alignment(self):
        v = Variable("a", AddressRange(0, 120), element_size=8)
        pieces = v.split(100)  # chunk rounded down to 96
        assert all(p.size % 8 == 0 for p in pieces)

    def test_split_chunk_smaller_than_element_rejected(self):
        v = Variable("a", AddressRange(0, 64), element_size=8)
        with pytest.raises(ValueError):
            v.split(4)


class TestSymbolTable:
    def test_add_and_get(self):
        table = SymbolTable()
        v = Variable("a", AddressRange(0, 16))
        table.add(v)
        assert table.get("a") is v
        assert "a" in table

    def test_duplicate_name_rejected(self):
        table = SymbolTable()
        table.add(Variable("a", AddressRange(0, 16)))
        with pytest.raises(ValueError, match="duplicate"):
            table.add(Variable("a", AddressRange(32, 16)))

    def test_overlap_rejected(self):
        table = SymbolTable()
        table.add(Variable("a", AddressRange(0, 16)))
        with pytest.raises(ValueError, match="overlaps"):
            table.add(Variable("b", AddressRange(8, 16)))

    def test_find_by_address(self):
        table = SymbolTable()
        table.add(Variable("a", AddressRange(0x100, 0x10)))
        table.add(Variable("b", AddressRange(0x200, 0x10)))
        assert table.find(0x105).name == "a"
        assert table.find(0x200).name == "b"
        assert table.find(0x150) is None
        assert table.find(0) is None

    def test_address_order_iteration(self):
        table = SymbolTable()
        table.add(Variable("late", AddressRange(0x200, 0x10)))
        table.add(Variable("early", AddressRange(0x100, 0x10)))
        assert table.names() == ["early", "late"]

    def test_kind_filters(self):
        table = SymbolTable()
        table.add(Variable("arr", AddressRange(0, 16)))
        table.add(
            Variable("s", AddressRange(32, 2), kind=VariableKind.SCALAR)
        )
        assert [v.name for v in table.arrays()] == ["arr"]
        assert [v.name for v in table.scalars()] == ["s"]

    def test_total_bytes(self):
        table = SymbolTable()
        table.add(Variable("a", AddressRange(0, 16)))
        table.add(Variable("b", AddressRange(64, 32)))
        assert table.total_bytes() == 48


class TestMemoryMap:
    def test_bump_allocation(self):
        mm = MemoryMap(base=0x1000, page_size=256)
        a = mm.allocate("a", 10, element_size=2)
        b = mm.allocate("b", 10, element_size=2)
        assert a.base == 0x1000
        assert b.base == a.range.end

    def test_page_aligned_mode(self):
        mm = MemoryMap(base=0x1000, page_size=256, page_aligned=True)
        mm.allocate("a", 10, element_size=2)
        b = mm.allocate("b", 10, element_size=2)
        assert b.base % 256 == 0

    def test_page_aligned_variables_share_no_page(self):
        mm = MemoryMap(base=0x1000, page_size=64, page_aligned=True)
        a = mm.allocate("a", 100, element_size=2)
        b = mm.allocate("b", 100, element_size=2)
        assert not mm.shares_page(a, b)

    def test_unaligned_variables_can_share_page(self):
        mm = MemoryMap(base=0x1000, page_size=256)
        a = mm.allocate("a", 10, element_size=2)
        b = mm.allocate("b", 10, element_size=2)
        assert mm.shares_page(a, b)

    def test_allocate_scalar(self):
        mm = MemoryMap()
        s = mm.allocate_scalar("s")
        assert s.kind is VariableKind.SCALAR
        assert s.element_count == 1

    def test_allocate_array(self):
        mm = MemoryMap()
        a = mm.allocate_array("a", 64, element_size=4)
        assert a.size == 256

    def test_column_image_alignment(self):
        mm = MemoryMap(base=0x1010, page_size=64)
        img = mm.allocate_column_image("pad", 512)
        assert img.base % 512 == 0
        assert img.size == 512

    def test_find(self):
        mm = MemoryMap()
        a = mm.allocate_array("a", 8)
        assert mm.find(a.base + 2).name == "a"
        assert mm.find(a.range.end) is None

    def test_pages_of(self):
        mm = MemoryMap(base=0, page_size=64)
        a = mm.allocate("a", 130, element_size=2)
        assert mm.pages_of(a) == [0, 1, 2]

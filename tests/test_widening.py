"""Tests for partition widening (multi-column masks)."""

from repro.layout.algorithm import DataLayoutPlanner, LayoutConfig
from repro.sim.config import TimingConfig
from repro.sim.executor import TraceExecutor
from repro.workloads.base import Workload

TIMING = TimingConfig(miss_penalty=10)


class _TwoVariables(Workload):
    """One oversized hot structure and one small table."""

    def __init__(self, **kwargs):
        super().__init__(name="two_vars", **kwargs)
        # 1 KB working set, cycled twice: needs two columns to fit.
        self.big = self.array("big", 512)
        self.small = self.array("small", 32)

    def run(self) -> None:
        self.begin_phase("main")
        for _ in range(2):
            for index in range(512):
                _ = self.big[index]
                _ = self.small[index % 32]
        self.end_phase()


def plan(run, widen):
    config = LayoutConfig(
        columns=4,
        column_bytes=512,
        split_oversized=False,
        widen_partitions=widen,
    )
    return DataLayoutPlanner(config).plan(run)


class TestWidening:
    def test_spare_columns_go_to_busiest_partition(self):
        run = _TwoVariables().record()
        assignment = plan(run, widen=True)
        assert assignment.mask_for("big").count() >= 2
        assert assignment.mask_for("small").count() >= 1
        assert not assignment.mask_for("big").overlaps(
            assignment.mask_for("small")
        )
        # Every cache column is used.
        union = assignment.mask_for("big") | assignment.mask_for("small")
        assert union.is_full()

    def test_default_keeps_single_columns(self):
        run = _TwoVariables().record()
        assignment = plan(run, widen=False)
        assert assignment.mask_for("big").count() == 1
        assert assignment.mask_for("small").count() == 1

    def test_widening_reduces_misses(self):
        """The 1 KB structure fits its widened partition but thrashes a
        single 512-byte column."""
        run = _TwoVariables().record()
        executor = TraceExecutor(TIMING)
        narrow = executor.run(run.trace, plan(run, widen=False))
        wide = executor.run(run.trace, plan(run, widen=True))
        assert wide.misses < narrow.misses
        assert wide.cycles < narrow.cycles

    def test_widened_masks_respect_scratchpad(self):
        run = _TwoVariables().record()
        config = LayoutConfig(
            columns=4,
            column_bytes=512,
            scratchpad_columns=1,
            split_oversized=False,
            widen_partitions=True,
        )
        assignment = DataLayoutPlanner(config).plan(run)
        for placement in assignment.placements.values():
            if placement.disposition.value == "cached":
                assert not placement.mask.overlaps(
                    assignment.scratchpad_mask
                )

    def test_reference_equivalence_with_wide_masks(self):
        run = _TwoVariables().record()
        assignment = plan(run, widen=True)
        executor = TraceExecutor(TIMING)
        fast = executor.run(run.trace, assignment)
        reference = executor.run_reference(run.trace, assignment)
        assert fast.cycles == reference.cycles
        assert fast.misses == reference.misses

"""Tests for replacement policies under column restriction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    PLRUPolicy,
    RandomPolicy,
    make_policy,
    policy_names,
)


class TestFactory:
    def test_names(self):
        assert set(policy_names()) == {"lru", "fifo", "random", "plru"}

    @pytest.mark.parametrize("name", ["lru", "fifo", "random", "plru"])
    def test_make(self, name):
        policy = make_policy(name, sets=4, ways=4)
        assert policy.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown replacement"):
            make_policy("mru", sets=4, ways=4)


class TestLRU:
    def test_victim_is_least_recently_used(self):
        policy = LRUPolicy(sets=1, ways=4)
        for way in range(4):
            policy.on_fill(0, way)
        policy.on_access(0, 0)  # 1 becomes LRU
        assert policy.victim(0, (0, 1, 2, 3)) == 1

    def test_restriction_respected(self):
        policy = LRUPolicy(sets=1, ways=4)
        for way in range(4):
            policy.on_fill(0, way)
        # Way 0 is globally LRU but excluded.
        assert policy.victim(0, (2, 3)) == 2

    def test_invalidate_makes_way_preferred(self):
        policy = LRUPolicy(sets=1, ways=4)
        for way in range(4):
            policy.on_fill(0, way)
        policy.on_invalidate(0, 3)
        assert policy.victim(0, (0, 1, 2, 3)) == 3

    def test_per_set_independence(self):
        policy = LRUPolicy(sets=2, ways=2)
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        policy.on_fill(1, 1)
        policy.on_fill(1, 0)
        assert policy.victim(0, (0, 1)) == 0
        assert policy.victim(1, (0, 1)) == 1

    def test_reset(self):
        policy = LRUPolicy(sets=1, ways=2)
        policy.on_fill(0, 1)
        policy.reset()
        assert policy.victim(0, (0, 1)) == 0

    def test_empty_candidates_rejected(self):
        policy = LRUPolicy(sets=1, ways=2)
        with pytest.raises(ValueError):
            policy.victim(0, ())


class TestFIFO:
    def test_hits_do_not_refresh(self):
        policy = FIFOPolicy(sets=1, ways=2)
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        policy.on_access(0, 0)  # FIFO ignores this
        assert policy.victim(0, (0, 1)) == 0

    def test_fill_order(self):
        policy = FIFOPolicy(sets=1, ways=3)
        policy.on_fill(0, 2)
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        assert policy.victim(0, (0, 1, 2)) == 2


class TestRandom:
    def test_deterministic_with_seed(self):
        first = RandomPolicy(sets=1, ways=4, seed=7)
        second = RandomPolicy(sets=1, ways=4, seed=7)
        picks_a = [first.victim(0, (0, 1, 2, 3)) for _ in range(20)]
        picks_b = [second.victim(0, (0, 1, 2, 3)) for _ in range(20)]
        assert picks_a == picks_b

    def test_reset_restores_sequence(self):
        policy = RandomPolicy(sets=1, ways=4, seed=3)
        first = [policy.victim(0, (0, 1, 2, 3)) for _ in range(10)]
        policy.reset()
        second = [policy.victim(0, (0, 1, 2, 3)) for _ in range(10)]
        assert first == second

    def test_single_candidate(self):
        policy = RandomPolicy(sets=1, ways=4, seed=0)
        assert policy.victim(0, (2,)) == 2


class TestPLRU:
    def test_requires_power_of_two_ways(self):
        with pytest.raises(ValueError, match="power-of-two"):
            PLRUPolicy(sets=1, ways=3)

    def test_initial_preference_is_way_zero(self):
        policy = PLRUPolicy(sets=1, ways=4)
        assert policy.victim(0, (0, 1, 2, 3)) == 0

    def test_touch_steers_away(self):
        policy = PLRUPolicy(sets=1, ways=4)
        policy.on_access(0, 0)
        # Tree now points away from way 0's half.
        assert policy.victim(0, (0, 1, 2, 3)) in (2, 3)

    def test_full_rotation(self):
        """Touching the victim each time cycles through all ways."""
        policy = PLRUPolicy(sets=1, ways=8)
        seen = set()
        for _ in range(8):
            victim = policy.victim(0, tuple(range(8)))
            seen.add(victim)
            policy.on_fill(0, victim)
        assert seen == set(range(8))

    def test_restriction_respected(self):
        policy = PLRUPolicy(sets=1, ways=4)
        policy.on_access(0, 2)
        policy.on_access(0, 3)
        assert policy.victim(0, (2, 3)) in (2, 3)

    def test_single_way_cache(self):
        policy = PLRUPolicy(sets=2, ways=1)
        policy.on_access(0, 0)
        assert policy.victim(0, (0,)) == 0


@given(
    name=st.sampled_from(["lru", "fifo", "random", "plru"]),
    events=st.lists(
        st.tuples(
            st.sampled_from(["fill", "access", "invalidate"]),
            st.integers(0, 3),  # set
            st.integers(0, 3),  # way
        ),
        max_size=60,
    ),
    candidate_bits=st.integers(1, 15),
    set_index=st.integers(0, 3),
)
def test_victim_always_among_candidates(
    name, events, candidate_bits, set_index
):
    """Core invariant: the victim is always a permitted way."""
    policy = make_policy(name, sets=4, ways=4, seed=1)
    for kind, s, w in events:
        if kind == "fill":
            policy.on_fill(s, w)
        elif kind == "access":
            policy.on_access(s, w)
        else:
            policy.on_invalidate(s, w)
    candidates = tuple(w for w in range(4) if candidate_bits >> w & 1)
    assert policy.victim(set_index, candidates) in candidates

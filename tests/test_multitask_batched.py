"""Batched multitask simulation must be bit-identical to the scalar
round-robin simulator — every JobResult field, at every quantum shape
(per-access switching, mid-trace, multi-wrap, batch)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.sim.engine.multitask_batch import (
    simulate_multitask_batched,
    simulate_multitask_matrix,
    simulate_multitask_sweep,
)
from repro.sim.multitask import Job, MultitaskSimulator
from repro.trace.trace import TraceBuilder
from repro.utils.bitvector import ColumnMask


def build_trace(rng, length, span, name):
    builder = TraceBuilder(name=name)
    for _ in range(length):
        builder.add_gap(int(rng.integers(0, 4)))
        builder.append(int(rng.integers(0, span)) * 2, is_write=False)
    return builder.build()


def result_tuple(result):
    return (
        result.instructions,
        result.accesses,
        result.hits,
        result.misses,
        result.wraps,
        result.quanta,
    )


@st.composite
def multitask_case(draw):
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    sets = draw(st.sampled_from([2, 4, 8]))
    columns = draw(st.sampled_from([2, 4, 8]))
    geometry = CacheGeometry(line_size=16, sets=sets, columns=columns)
    job_count = draw(st.integers(1, 3))
    jobs = []
    for index in range(job_count):
        length = draw(st.integers(3, 100))
        mask = None
        if draw(st.booleans()) and columns >= 2:
            start = draw(st.integers(0, columns - 1))
            width = draw(st.integers(1, columns - start))
            mask = ColumnMask.contiguous(start, width, columns)
        jobs.append(
            Job(
                name=f"job{index}",
                trace=build_trace(
                    rng, length, draw(st.sampled_from([16, 64, 512])),
                    f"job{index}",
                ),
                mask=mask,
                address_offset=index << 20,
            )
        )
    quantum = draw(st.sampled_from([1, 2, 3, 7, 50, 1000, 10**6]))
    budget = draw(st.sampled_from([1, 5, 97, 1000, 20000]))
    warmup = draw(st.integers(0, 2))
    return geometry, jobs, quantum, budget, warmup


class TestBatchedMultitask:
    @given(case=multitask_case())
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_scalar(self, case):
        geometry, jobs, quantum, budget, warmup = case
        simulator = MultitaskSimulator(geometry, jobs)
        simulator.warm_up(warmup)
        reference = simulator.run(quantum, budget)
        batched = simulate_multitask_batched(
            geometry, jobs, quantum, budget, warmup_passes=warmup
        )
        assert set(batched) == set(reference)
        for name in reference:
            assert result_tuple(batched[name]) == result_tuple(
                reference[name]
            ), name

    def test_quantum_one_switches_every_access(self):
        rng = np.random.default_rng(0)
        geometry = CacheGeometry(line_size=16, sets=4, columns=4)
        jobs = [
            Job(
                name=f"j{index}",
                trace=build_trace(rng, 40, 64, f"j{index}"),
                address_offset=index << 20,
            )
            for index in range(3)
        ]
        simulator = MultitaskSimulator(geometry, jobs)
        reference = simulator.run(1, 500)
        batched = simulate_multitask_batched(geometry, jobs, 1, 500)
        for name in reference:
            assert result_tuple(batched[name]) == result_tuple(
                reference[name]
            )
            # quantum 1 + every-access-costs->=1 ==> one access per quantum
            assert batched[name].quanta == batched[name].accesses

    def test_sweep_matches_per_point(self):
        rng = np.random.default_rng(2)
        geometry = CacheGeometry(line_size=16, sets=4, columns=4)
        jobs = [
            Job(
                name=f"j{index}",
                trace=build_trace(rng, 80, 64, f"j{index}"),
                address_offset=index << 20,
            )
            for index in range(3)
        ]
        quanta = [1, 4, 16, 64, 100_000]
        swept = simulate_multitask_sweep(
            geometry, jobs, quanta, 3000, warmup_passes=1,
            max_batch_accesses=500,  # force several kernel flushes
        )
        assert len(swept) == len(quanta)
        for quantum, point in zip(quanta, swept):
            single = simulate_multitask_batched(
                geometry, jobs, quantum, 3000, warmup_passes=1
            )
            for name in single:
                assert result_tuple(point[name]) == result_tuple(
                    single[name]
                ), (quantum, name)

    def test_matrix_shares_schedule_across_variants(self):
        rng = np.random.default_rng(7)
        small = CacheGeometry(line_size=16, sets=4, columns=4)
        large = CacheGeometry(line_size=16, sets=16, columns=4)
        traces = [build_trace(rng, 90, 128, f"j{index}") for index in range(3)]

        def make_jobs(mapped):
            jobs = []
            for index, trace in enumerate(traces):
                if not mapped:
                    mask = None
                elif index == 0:
                    mask = ColumnMask.contiguous(0, 3, 4)
                else:
                    mask = ColumnMask.contiguous(3, 1, 4)
                jobs.append(
                    Job(
                        name=f"j{index}",
                        trace=trace,
                        mask=mask,
                        address_offset=index << 20,
                    )
                )
            return jobs

        variants = [
            (small, make_jobs(False)),
            (small, make_jobs(True)),
            (large, make_jobs(False)),
            (large, make_jobs(True)),
        ]
        quanta = [1, 8, 300]
        matrix = simulate_multitask_matrix(
            variants, quanta, 2500, warmup_passes=1
        )
        for variant_index, (geometry, jobs) in enumerate(variants):
            for quantum_index, quantum in enumerate(quanta):
                simulator = MultitaskSimulator(geometry, jobs)
                simulator.warm_up(1)
                reference = simulator.run(quantum, 2500)
                point = matrix[variant_index][quantum_index]
                for name in reference:
                    assert result_tuple(point[name]) == result_tuple(
                        reference[name]
                    ), (variant_index, quantum, name)

    def test_matrix_rejects_mismatched_line_size(self):
        rng = np.random.default_rng(1)
        trace = build_trace(rng, 10, 32, "j0")
        jobs = [Job(name="j0", trace=trace)]
        variants = [
            (CacheGeometry(line_size=16, sets=4, columns=2), jobs),
            (CacheGeometry(line_size=32, sets=4, columns=2), jobs),
        ]
        with pytest.raises(ValueError, match="line size"):
            simulate_multitask_matrix(variants, [1], 10)

    def test_matrix_mixes_associativities(self):
        """Variants may differ in column count — including one above
        the int16 mask-palette threshold (regression: the palette
        dtype was chosen from variant 0 alone)."""
        rng = np.random.default_rng(7)
        trace = build_trace(rng, 600, 4096, "a")
        jobs = [Job(name="a", trace=trace)]
        variants = [
            (CacheGeometry(line_size=16, sets=8, columns=8), jobs),
            (CacheGeometry(line_size=16, sets=8, columns=16), jobs),
        ]
        matrix = simulate_multitask_matrix(variants, [32], 2_000)
        for (geometry, variant_jobs), points in zip(variants, matrix):
            simulator = MultitaskSimulator(geometry, variant_jobs)
            expected = simulator.run(32, 2_000)
            assert result_tuple(points[0]["a"]) == result_tuple(
                expected["a"]
            )

    def test_rejects_empty_jobs_and_bad_quanta(self):
        geometry = CacheGeometry(line_size=16, sets=4, columns=2)
        with pytest.raises(ValueError, match="at least one job"):
            simulate_multitask_batched(geometry, [], 1, 1)
        rng = np.random.default_rng(1)
        jobs = [Job(name="j0", trace=build_trace(rng, 5, 32, "j0"))]
        with pytest.raises(ValueError, match="quantum"):
            simulate_multitask_batched(geometry, jobs, 0, 10)
        with pytest.raises(ValueError, match="budget"):
            simulate_multitask_batched(geometry, jobs, 1, 0)

"""Tests for lifetime intervals."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.intervals import Interval, union_length


class TestInterval:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Interval(5, 2)

    def test_length(self):
        assert Interval(2, 7).length == 5

    def test_empty(self):
        assert Interval(3, 3).is_empty()
        assert not Interval(3, 4).is_empty()

    def test_contains(self):
        interval = Interval(2, 5)
        assert interval.contains(2)
        assert interval.contains(4)
        assert not interval.contains(5)

    def test_overlaps_touching_is_false(self):
        assert not Interval(0, 5).overlaps(Interval(5, 10))

    def test_overlaps_partial(self):
        assert Interval(0, 6).overlaps(Interval(5, 10))

    def test_intersection_disjoint_is_none(self):
        assert Interval(0, 3).intersection(Interval(4, 8)) is None

    def test_intersection_matches_paper_delta(self):
        # delta = [MAX(first_i, first_j), MIN(last_i, last_j)]
        assert Interval(2, 10).intersection(Interval(5, 20)) == Interval(5, 10)

    def test_hull(self):
        assert Interval(2, 4).hull(Interval(8, 9)) == Interval(2, 9)

    def test_expanded_to(self):
        assert Interval(5, 6).expanded_to(2) == Interval(2, 6)
        assert Interval(5, 6).expanded_to(9) == Interval(5, 10)

    def test_shifted(self):
        assert Interval(1, 4).shifted(10) == Interval(11, 14)

    def test_iter_and_len(self):
        assert list(Interval(3, 6)) == [3, 4, 5]
        assert len(Interval(3, 6)) == 3

    def test_ordering(self):
        assert Interval(1, 5) < Interval(2, 3)


class TestUnionLength:
    def test_empty_list(self):
        assert union_length([]) == 0

    def test_disjoint(self):
        assert union_length([Interval(0, 3), Interval(5, 8)]) == 6

    def test_overlapping(self):
        assert union_length([Interval(0, 5), Interval(3, 8)]) == 8

    def test_nested(self):
        assert union_length([Interval(0, 10), Interval(2, 4)]) == 10

    def test_empty_intervals_ignored(self):
        assert union_length([Interval(3, 3), Interval(1, 2)]) == 1


@given(
    starts=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=0, max_value=30),
        ),
        max_size=10,
    )
)
def test_union_length_matches_set_semantics(starts):
    intervals = [Interval(a, a + n) for a, n in starts]
    positions = set()
    for interval in intervals:
        positions.update(range(interval.start, interval.stop))
    assert union_length(intervals) == len(positions)


@given(
    a=st.integers(0, 50), la=st.integers(0, 20),
    b=st.integers(0, 50), lb=st.integers(0, 20),
)
def test_intersection_commutative(a, la, b, lb):
    first = Interval(a, a + la)
    second = Interval(b, b + lb)
    assert first.intersection(second) == second.intersection(first)
    assert first.overlaps(second) == second.overlaps(first)

"""The ``repro lint`` command surface: formats, explain, exit codes."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.cli import main as repro_main

DIRTY_SOURCE = (
    "import random\n"
    "\n"
    "\n"
    "def pick(items):\n"
    '    """Draw one item."""\n'
    "    return random.choice(items)\n"
)


@pytest.fixture
def dirty_file(tmp_path: Path) -> Path:
    """A module with one guaranteed R001 finding."""
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY_SOURCE, encoding="utf-8")
    return path


class TestExitCodes:
    """0 clean, 1 findings, 2 usage error."""

    def test_findings_exit_one(self, dirty_file: Path, capsys):
        """A real finding fails the gate."""
        code = lint_main(["--no-baseline", str(dirty_file)])
        out = capsys.readouterr().out
        assert code == 1
        assert "R001" in out

    def test_clean_exit_zero(self, tmp_path: Path, capsys):
        """An empty tree is clean."""
        clean = tmp_path / "clean.py"
        clean.write_text('"""Nothing here."""\n', encoding="utf-8")
        assert lint_main(["--no-baseline", str(clean)]) == 0

    def test_missing_path_exit_two(self, tmp_path: Path, capsys):
        """A nonexistent path is a usage error, not 'clean'."""
        code = lint_main([str(tmp_path / "no_such_dir")])
        assert code == 2


class TestFormats:
    """text / json / sarif renderings of the same findings."""

    def test_json_envelope(self, dirty_file: Path, capsys):
        """The JSON format carries findings plus counters."""
        lint_main(
            ["--no-baseline", "--format", "json", str(dirty_file)]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files"] == 1
        [finding] = payload["findings"]
        assert finding["rule"] == "R001"
        assert finding["fingerprint"]

    def test_sarif_run(self, dirty_file: Path, capsys):
        """SARIF 2.1.0 with rule metadata and one result."""
        lint_main(
            ["--no-baseline", "--format", "sarif", str(dirty_file)]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        [run] = payload["runs"]
        rule_ids = [
            rule["id"] for rule in run["tool"]["driver"]["rules"]
        ]
        assert rule_ids == ["R001", "R002", "R003", "R004", "R005"]
        [result] = run["results"]
        assert result["ruleId"] == "R001"
        assert result["partialFingerprints"]["reproLint/v1"]

    def test_output_file(
        self, dirty_file: Path, tmp_path: Path, capsys
    ):
        """--output writes the report instead of printing it."""
        target = tmp_path / "report.sarif"
        code = lint_main(
            [
                "--no-baseline",
                "--format",
                "sarif",
                "--output",
                str(target),
                str(dirty_file),
            ]
        )
        assert code == 1
        assert json.loads(target.read_text(encoding="utf-8"))["runs"]


class TestBaselineFlow:
    """--write-baseline grandfathers; the next run passes."""

    def test_write_then_pass(
        self, dirty_file: Path, tmp_path: Path, capsys
    ):
        """Baselined findings no longer fail the gate."""
        baseline = tmp_path / "baseline.json"
        assert (
            lint_main(
                [
                    "--baseline",
                    str(baseline),
                    "--write-baseline",
                    str(dirty_file),
                ]
            )
            == 0
        )
        assert (
            lint_main(["--baseline", str(baseline), str(dirty_file)])
            == 0
        )
        out = capsys.readouterr().out
        assert "1 baselined" in out


class TestExplainAndList:
    """--explain and --list-rules document the rule set."""

    @pytest.mark.parametrize(
        "rule", ["R001", "R002", "R003", "R004", "R005"]
    )
    def test_explain_known_rule(self, rule: str, capsys):
        """Each rule explains itself with suppression syntax."""
        assert lint_main(["--explain", rule]) == 0
        out = capsys.readouterr().out
        assert out.startswith(rule)
        assert "Why it exists:" in out
        assert f"# repro: ignore[{rule}]" in out

    def test_explain_unknown_rule(self, capsys):
        """Unknown ids are a usage error listing the catalog."""
        assert lint_main(["--explain", "R999"]) == 2
        assert "R001" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        """One line per rule."""
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 5


class TestTopLevelVerb:
    """``repro lint`` dispatches through the umbrella CLI."""

    def test_dispatch(self, capsys):
        """The top-level command reaches the analysis CLI."""
        assert repro_main(["lint", "--list-rules"]) == 0
        assert "R003" in capsys.readouterr().out

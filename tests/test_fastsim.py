"""Tests for the fast simulator, including equivalence with the
reference column cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.column_cache import ColumnCache
from repro.cache.fastsim import FastColumnCache, blocks_of, simulate_trace
from repro.cache.geometry import CacheGeometry
from repro.utils.bitvector import ColumnMask


def geometry(sets=4, columns=4):
    return CacheGeometry(line_size=16, sets=sets, columns=columns)


class TestBasics:
    def test_miss_then_hit(self):
        result = simulate_trace([0x100, 0x100], geometry())
        assert result.hits == 1
        assert result.misses == 1

    def test_blocks_of(self):
        blocks = blocks_of([0x10, 0x1F, 0x20], geometry())
        assert list(blocks) == [1, 1, 2]

    def test_empty_mask_bypasses(self):
        result = simulate_trace(
            [0x100, 0x100], geometry(), mask_bits=[0, 0]
        )
        assert result.bypasses == 2
        assert result.misses == 2

    def test_uniform_mask(self):
        g = geometry(sets=1, columns=2)
        cache = FastColumnCache(g)
        blocks = blocks_of([0x00, 0x10, 0x20], g)
        cache.run(blocks.tolist(), uniform_mask=0b01)
        # Only one way permitted: only the last block survives.
        assert cache.contains_block(2)
        assert not cache.contains_block(0)

    def test_both_mask_kinds_rejected(self):
        cache = FastColumnCache(geometry())
        with pytest.raises(ValueError, match="not both"):
            cache.run([0], mask_bits=[1], uniform_mask=1)

    def test_flush(self):
        g = geometry()
        cache = FastColumnCache(g)
        cache.run(blocks_of([0x100], g).tolist())
        cache.flush()
        assert not cache.contains_block(0x100 >> 4)

    def test_state_persists_across_runs(self):
        g = geometry()
        cache = FastColumnCache(g)
        blocks = blocks_of([0x100, 0x100], g).tolist()
        cache.run(blocks, start=0, stop=1)
        second = cache.run(blocks, start=1, stop=2)
        assert second.hits == 1

    def test_cumulative_result(self):
        g = geometry()
        cache = FastColumnCache(g)
        cache.run(blocks_of([0x100, 0x100, 0x200], g).tolist())
        total = cache.result()
        assert total.hits == 1
        assert total.misses == 2
        assert total.accesses == 3
        assert total.miss_rate == pytest.approx(2 / 3)

    def test_run_with_flags(self):
        g = geometry()
        cache = FastColumnCache(g)
        flags = cache.run_with_flags(blocks_of([0x100, 0x100], g).tolist())
        assert list(flags) == [False, True]


@st.composite
def masked_trace(draw):
    length = draw(st.integers(1, 300))
    addresses = draw(
        st.lists(
            st.integers(0, 2047), min_size=length, max_size=length
        )
    )
    masks = draw(
        st.lists(
            st.integers(0, 15), min_size=length, max_size=length
        )
    )
    return addresses, masks


class TestEquivalenceWithReference:
    @given(trace=masked_trace())
    @settings(max_examples=60, deadline=None)
    def test_masked_equivalence(self, trace):
        """Property: the fast simulator and the reference column cache
        agree access-for-access under arbitrary masks."""
        addresses, masks = trace
        g = geometry(sets=4, columns=4)
        reference = ColumnCache(g, policy="lru")
        fast = FastColumnCache(g)
        blocks = blocks_of(addresses, g).tolist()
        for position, (address, bits) in enumerate(zip(addresses, masks)):
            expected = reference.access(
                address, mask=ColumnMask(bits, 4)
            )
            before_hits = fast.hits
            fast.run(blocks, mask_bits=masks, start=position,
                     stop=position + 1)
            got_hit = fast.hits > before_hits
            assert got_hit == expected.hit

    @given(
        addresses=st.lists(st.integers(0, 4095), min_size=1, max_size=400),
    )
    @settings(max_examples=40, deadline=None)
    def test_unmasked_totals_match(self, addresses):
        g = geometry(sets=8, columns=2)
        reference = ColumnCache(g, policy="lru")
        for address in addresses:
            reference.access(address)
        fast_result = simulate_trace(addresses, g)
        assert fast_result.hits == reference.stats.hits
        assert fast_result.misses == reference.stats.misses

    def test_residency_agrees(self):
        g = geometry(sets=2, columns=2)
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 512, 200).tolist()
        masks = rng.integers(1, 4, 200).tolist()
        reference = ColumnCache(g)
        fast = FastColumnCache(g)
        blocks = blocks_of(addresses, g).tolist()
        for position, address in enumerate(addresses):
            reference.access(address, mask=ColumnMask(masks[position], 2))
        fast.run(blocks, mask_bits=masks)
        for address in set(addresses):
            assert fast.contains_block(address >> 4) == reference.contains(
                address
            )


class TestRunWithFlags:
    """The single-pass run_with_flags must mirror run() exactly."""

    def test_flag_count_equals_hit_count(self):
        g = geometry(sets=4, columns=4)
        rng = np.random.default_rng(11)
        blocks = rng.integers(0, 128, 5000).tolist()
        masks = rng.integers(0, 16, 5000).tolist()
        counting = FastColumnCache(g)
        reference = counting.run(blocks, mask_bits=masks)
        flagging = FastColumnCache(g)
        flags = flagging.run_with_flags(blocks, mask_bits=masks)
        assert int(flags.sum()) == reference.hits
        assert flagging.result().hits == reference.hits
        assert flagging.result().misses == reference.misses
        assert flagging.result().bypasses == reference.bypasses

    @pytest.mark.parametrize("uniform_mask", [None, 0b0011, 0])
    def test_uniform_mask_flags(self, uniform_mask):
        g = geometry(sets=2, columns=4)
        rng = np.random.default_rng(5)
        blocks = rng.integers(0, 32, 800).tolist()
        counting = FastColumnCache(g)
        reference = counting.run(blocks, uniform_mask=uniform_mask)
        flagging = FastColumnCache(g)
        flags = flagging.run_with_flags(blocks, uniform_mask=uniform_mask)
        assert int(flags.sum()) == reference.hits
        assert flagging.result().bypasses == reference.bypasses

    def test_flags_leave_identical_cache_state(self):
        """After run_with_flags, future behaviour matches run()."""
        g = geometry(sets=4, columns=2)
        rng = np.random.default_rng(7)
        first = rng.integers(0, 64, 300).tolist()
        second = rng.integers(0, 64, 300).tolist()
        via_run = FastColumnCache(g)
        via_run.run(first)
        via_flags = FastColumnCache(g)
        via_flags.run_with_flags(first)
        assert via_run.run(second).hits == via_flags.run(second).hits

    def test_rejects_both_mask_kinds(self):
        g = geometry()
        with pytest.raises(ValueError, match="not both"):
            FastColumnCache(g).run_with_flags(
                [0], mask_bits=[1], uniform_mask=1
            )

    @given(
        seed=st.integers(0, 2**31),
        length=st.integers(1, 200),
        columns=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_per_access_flags_are_exact(self, seed, length, columns):
        """Each flag equals the hit delta an access-by-access run sees."""
        g = geometry(sets=4, columns=columns)
        rng = np.random.default_rng(seed)
        blocks = rng.integers(0, 48, length).tolist()
        masks = rng.integers(0, 1 << columns, length).tolist()
        flags = FastColumnCache(g).run_with_flags(blocks, mask_bits=masks)
        stepper = FastColumnCache(g)
        for position in range(length):
            outcome = stepper.run(
                blocks, mask_bits=masks, start=position, stop=position + 1
            )
            assert bool(flags[position]) == (outcome.hits == 1), position


class TestRunChunkedBoundaries:
    """Chunk-boundary state carryover (regression: the chunk loop must
    leave cache state exactly where one big run leaves it, for every
    boundary placement including the degenerate chunk sizes)."""

    def _trace(self, length=257, seed=11, columns=4):
        rng = np.random.default_rng(seed)
        blocks = rng.integers(0, 48, length).astype(np.int64)
        masks = rng.integers(0, 1 << columns, length).astype(np.int64)
        return blocks, masks

    @pytest.mark.parametrize("offset", [None, -1, 0, 1])
    def test_boundary_chunk_sizes_masked(self, offset):
        """Chunk sizes 1, len-1, len and len+1 all match one run."""
        g = geometry(sets=4, columns=4)
        blocks, masks = self._trace()
        chunk_size = 1 if offset is None else len(blocks) + offset
        one_shot = FastColumnCache(g)
        expected = one_shot.run(blocks.tolist(), mask_bits=masks.tolist())
        chunked = FastColumnCache(g)
        outcome = chunked.run_chunked(
            blocks, mask_bits=masks, chunk_size=chunk_size
        )
        assert outcome == expected
        assert chunked.result() == one_shot.result()

    @pytest.mark.parametrize("chunk_size", [1, 63, 64, 65, 1 << 16])
    def test_state_carries_across_chunk_boundaries(self, chunk_size):
        """After chunked streaming, the *resident state* is identical:
        a follow-up trace sees the same hits either way."""
        g = geometry(sets=4, columns=2)
        blocks, masks = self._trace(length=64, seed=3, columns=2)
        follow_up, follow_masks = self._trace(length=100, seed=5, columns=2)
        one_shot = FastColumnCache(g)
        one_shot.run(blocks.tolist(), mask_bits=masks.tolist())
        chunked = FastColumnCache(g)
        chunked.run_chunked(blocks, mask_bits=masks, chunk_size=chunk_size)
        assert chunked.run(
            follow_up.tolist(), mask_bits=follow_masks.tolist()
        ) == one_shot.run(
            follow_up.tolist(), mask_bits=follow_masks.tolist()
        )

    def test_uniform_mask_chunked(self):
        g = geometry(sets=4, columns=4)
        blocks, _ = self._trace(length=130)
        expected = FastColumnCache(g).run(
            blocks.tolist(), uniform_mask=0b0011
        )
        outcome = FastColumnCache(g).run_chunked(
            blocks, uniform_mask=0b0011, chunk_size=7
        )
        assert outcome == expected

    def test_rejects_bad_chunk_size(self):
        g = geometry()
        with pytest.raises(ValueError, match="chunk_size"):
            FastColumnCache(g).run_chunked(np.zeros(4, dtype=np.int64),
                                           chunk_size=0)

"""The fleet executor: scheduling, events, telemetry, differential.

The bar for the fleet layer is the same as for every other backend
pair in this repository (``docs/testing.md``): the lockstep fast path
and the scalar reference path must produce **bit-identical per-access
hit streams** on the same scenario — including scenarios where
arrivals cut windows short, departures release columns mid-run and
the broker rewrites tints between segments.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.cache.geometry import CacheGeometry
from repro.fleet import (
    ColumnBroker,
    FleetConfig,
    FleetEvent,
    FleetExecutor,
    FleetTrace,
    SharedPool,
    TenantSpec,
    TenantStatus,
    single_tenant_trace,
)
from repro.sim.config import MULTITASK_TIMING
from repro.workloads.suite import make_workload
from tests.strategies import fleet_scenario

TIMING = MULTITASK_TIMING


def spec_for(index, workload, priority=1, **kwargs):
    run = make_workload(workload, seed=10 + index, **kwargs).record()
    return TenantSpec(
        name=f"{workload}-{index}",
        run=run,
        priority=priority,
        address_offset=index << 32,
    )


@pytest.fixture(scope="module")
def trio():
    return [
        spec_for(0, "crc32", message_bytes=256),
        spec_for(1, "histogram", sample_count=256, bin_count=32),
        spec_for(2, "fir", signal_length=256, tap_count=16),
    ]


@pytest.fixture
def geometry():
    return CacheGeometry(line_size=16, sets=32, columns=8)


def run_fleet(geometry, fleet, config=None, broker=None, **kwargs):
    executor = FleetExecutor(
        geometry,
        TIMING,
        config or FleetConfig(
            quantum_instructions=128, window_instructions=2048
        ),
    )
    return executor.run(fleet, broker=broker, **kwargs)


class TestScheduling:
    def test_conservation(self, geometry, trio):
        horizon = 30_000
        fleet = FleetTrace(
            events=tuple(
                FleetEvent(time=0, kind="arrival", spec=spec)
                for spec in trio
            ),
            horizon_instructions=horizon,
        )
        result = run_fleet(geometry, fleet)
        assert result.total_instructions >= horizon
        # Segment budgets are exact: the final quantum is cut to the
        # remaining budget, so overshoot is bounded by one atomic
        # access, not one quantum.
        heaviest_access = max(
            int(spec.run.trace.gaps.max()) + 1 for spec in trio
        )
        assert result.total_instructions < horizon + heaviest_access
        total = sum(
            telemetry.instructions
            for telemetry in result.telemetry.values()
        )
        assert total == result.total_instructions
        for telemetry in result.telemetry.values():
            assert telemetry.accesses == telemetry.hits + telemetry.misses
            assert telemetry.instructions == sum(
                sample.instructions for sample in telemetry.samples
            )

    def test_solo_run_uses_whole_cache(self, geometry, trio):
        result = run_fleet(
            geometry, single_tenant_trace(trio[0], 10_000)
        )
        telemetry = result.telemetry[trio[0].name]
        assert telemetry.status is TenantStatus.RUNNING
        assert all(
            sample.columns == geometry.columns
            for sample in telemetry.samples
        )

    def test_idle_gap_before_first_arrival(self, geometry, trio):
        fleet = FleetTrace(
            events=(
                FleetEvent(time=5_000, kind="arrival", spec=trio[0]),
            ),
            horizon_instructions=12_000,
        )
        result = run_fleet(geometry, fleet)
        telemetry = result.telemetry[trio[0].name]
        assert telemetry.admitted_at >= 5_000
        # Only the tenant's own instructions are accounted.
        assert telemetry.instructions == sum(
            sample.instructions for sample in telemetry.samples
        )


class TestEvents:
    def test_arrival_mid_window_cuts_segment(self, geometry, trio):
        """An arrival lands inside what would be one huge window: the
        segment is cut at the event, so the tenant starts on time
        (quantum granularity), not a window later."""
        config = FleetConfig(
            quantum_instructions=128, window_instructions=50_000
        )
        fleet = FleetTrace(
            events=(
                FleetEvent(time=0, kind="arrival", spec=trio[0]),
                FleetEvent(time=7_000, kind="arrival", spec=trio[1]),
            ),
            horizon_instructions=40_000,
        )
        result = run_fleet(geometry, fleet, config=config)
        late = result.telemetry[trio[1].name]
        assert late.status is TenantStatus.RUNNING
        assert late.admitted_at == 7_000
        # Had the arrival waited for the window's natural end
        # (50k > horizon) it would never run; instead it gets its
        # round-robin half of the remaining ~33k instructions.
        assert late.instructions > 10_000
        # The first tenant's run really was segmented by the arrival.
        first = result.telemetry[trio[0].name]
        assert len(first.samples) >= 2

    def test_arrival_during_inflight_repartition(self, geometry, trio):
        """Back-to-back events: the second arrival lands while the
        first arrival's repartition is being applied at the same
        boundary; both must be admitted onto disjoint columns."""
        broker = ColumnBroker(geometry, TIMING)
        fleet = FleetTrace(
            events=(
                FleetEvent(time=0, kind="arrival", spec=trio[0]),
                FleetEvent(time=1_000, kind="arrival", spec=trio[1]),
                FleetEvent(time=1_001, kind="arrival", spec=trio[2]),
            ),
            horizon_instructions=20_000,
        )
        result = run_fleet(geometry, fleet, broker=broker)
        broker.check_disjoint()
        for spec in trio:
            assert (
                result.telemetry[spec.name].status
                is TenantStatus.RUNNING
            )
        assert len(broker.grants) == 3

    def test_departure_mid_window_releases_columns(
        self, geometry, trio
    ):
        """A departure inside one huge window frees columns for the
        survivor *at the event*, not at the window's natural end."""
        config = FleetConfig(
            quantum_instructions=128, window_instructions=100_000
        )
        fleet = FleetTrace(
            events=(
                FleetEvent(time=0, kind="arrival", spec=trio[0]),
                FleetEvent(time=0, kind="arrival", spec=trio[1]),
                FleetEvent(
                    time=30_000, kind="departure", tenant=trio[1].name
                ),
            ),
            horizon_instructions=80_000,
        )
        result = run_fleet(geometry, fleet, config=config)
        departed = result.telemetry[trio[1].name]
        assert departed.status is TenantStatus.DEPARTED
        assert departed.departed_at == 30_000
        # It was descheduled at the event, not at the window's natural
        # end (100k): it ran its round-robin half of ~30k instructions.
        assert departed.instructions < 20_000
        survivor = result.telemetry[trio[0].name]
        occupancy = survivor.occupancy_history()
        # The survivor's grant grows to the whole cache afterwards.
        assert occupancy[-1] == geometry.columns
        assert occupancy[0] < geometry.columns
        # And the survivor keeps executing past the departure.
        assert survivor.samples[-1].instructions > 0

    def test_rejection_when_zero_columns_free(self, trio):
        geometry = CacheGeometry(line_size=16, sets=32, columns=2)
        late = spec_for(3, "crc32", message_bytes=256)
        fleet = FleetTrace(
            events=(
                FleetEvent(time=0, kind="arrival", spec=trio[0]),
                FleetEvent(time=0, kind="arrival", spec=trio[1]),
                FleetEvent(time=2_000, kind="arrival", spec=trio[2]),
                FleetEvent(
                    time=6_000, kind="departure", tenant=trio[0].name
                ),
                FleetEvent(time=10_000, kind="arrival", spec=late),
            ),
            horizon_instructions=25_000,
        )
        result = run_fleet(geometry, fleet)
        assert result.rejected == [trio[2].name]
        rejected = result.telemetry[trio[2].name]
        assert rejected.status is TenantStatus.REJECTED
        assert rejected.samples == []
        # After a departure freed a column, the next arrival got in.
        assert (
            result.telemetry[late.name].status is TenantStatus.RUNNING
        )

    def test_departure_of_rejected_tenant_is_noop(self, trio):
        geometry = CacheGeometry(line_size=16, sets=32, columns=2)
        fleet = FleetTrace(
            events=(
                FleetEvent(time=0, kind="arrival", spec=trio[0]),
                FleetEvent(time=0, kind="arrival", spec=trio[1]),
                FleetEvent(time=1_000, kind="arrival", spec=trio[2]),
                FleetEvent(
                    time=2_000, kind="departure", tenant=trio[2].name
                ),
            ),
            horizon_instructions=10_000,
        )
        result = run_fleet(geometry, fleet)
        assert (
            result.telemetry[trio[2].name].status
            is TenantStatus.REJECTED
        )

    def test_unknown_departure_raises(self, geometry, trio):
        fleet = FleetTrace(
            events=(
                FleetEvent(time=0, kind="arrival", spec=trio[0]),
                FleetEvent(time=1_000, kind="departure", tenant="ghost"),
            ),
            horizon_instructions=10_000,
        )
        with pytest.raises(ValueError):
            run_fleet(geometry, fleet)


class TestValidation:
    def test_event_validation(self, trio):
        with pytest.raises(ValueError):
            FleetEvent(time=0, kind="arrival")
        with pytest.raises(ValueError):
            FleetEvent(time=0, kind="departure")
        with pytest.raises(ValueError):
            FleetEvent(time=0, kind="resize", tenant="a")
        with pytest.raises(ValueError):
            FleetEvent(time=-1, kind="departure", tenant="a")

    def test_trace_validation(self, trio):
        events = (
            FleetEvent(time=5, kind="arrival", spec=trio[0]),
            FleetEvent(time=1, kind="departure", tenant="x"),
        )
        with pytest.raises(ValueError):
            FleetTrace(events=events, horizon_instructions=100)
        with pytest.raises(ValueError):
            FleetTrace(events=(), horizon_instructions=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(quantum_instructions=0)
        with pytest.raises(ValueError):
            FleetConfig(
                quantum_instructions=100, window_instructions=50
            )

    def test_unknown_backend_rejected(self, geometry, trio):
        fleet = single_tenant_trace(trio[0], 1_000)
        with pytest.raises(ValueError):
            run_fleet(geometry, fleet, backend="quantum")


def assert_identical(result_fast, result_reference):
    assert np.array_equal(
        result_fast.hit_stream, result_reference.hit_stream
    )
    assert result_fast.total_instructions == (
        result_reference.total_instructions
    )
    assert set(result_fast.telemetry) == set(result_reference.telemetry)
    for name, fast in result_fast.telemetry.items():
        reference = result_reference.telemetry[name]
        assert fast.samples == reference.samples
        assert fast.status is reference.status
        assert fast.wraps == reference.wraps
        assert fast.remaps == reference.remaps


class TestDifferential:
    def test_deterministic_scenario_bit_identical(self, geometry, trio):
        fleet = FleetTrace(
            events=(
                FleetEvent(time=0, kind="arrival", spec=trio[0]),
                FleetEvent(time=3_000, kind="arrival", spec=trio[1]),
                FleetEvent(time=9_000, kind="arrival", spec=trio[2]),
                FleetEvent(
                    time=15_000, kind="departure", tenant=trio[1].name
                ),
            ),
            horizon_instructions=30_000,
        )
        config = FleetConfig(
            quantum_instructions=128, window_instructions=2048
        )
        executor = FleetExecutor(geometry, TIMING, config)
        fast = executor.run(
            fleet,
            broker=ColumnBroker(geometry, TIMING),
            backend="lockstep",
            collect_flags=True,
        )
        reference = executor.run(
            fleet,
            broker=ColumnBroker(geometry, TIMING),
            backend="reference",
            collect_flags=True,
        )
        assert fast.hit_stream is not None
        assert len(fast.hit_stream) > 0
        assert_identical(fast, reference)
        # Broker-driven tint rewrites really happened mid-run.
        assert len(fast.rewrites) >= 4

    def test_shared_pool_bit_identical(self, geometry, trio):
        fleet = FleetTrace(
            events=tuple(
                FleetEvent(time=0, kind="arrival", spec=spec)
                for spec in trio
            ),
            horizon_instructions=20_000,
        )
        executor = FleetExecutor(
            geometry,
            TIMING,
            FleetConfig(
                quantum_instructions=64, window_instructions=1024
            ),
        )
        fast = executor.run(
            fleet,
            broker=SharedPool(geometry, TIMING),
            backend="lockstep",
            collect_flags=True,
        )
        reference = executor.run(
            fleet,
            broker=SharedPool(geometry, TIMING),
            backend="reference",
            collect_flags=True,
        )
        assert_identical(fast, reference)

    def test_reference_backend_without_flags(self, geometry, trio):
        """The counting-only reference path (no flag collection)
        produces the same telemetry as the flag-collecting one."""
        fleet = single_tenant_trace(trio[0], 8_000)
        executor = FleetExecutor(
            geometry,
            TIMING,
            FleetConfig(
                quantum_instructions=64, window_instructions=1024
            ),
        )
        counted = executor.run(fleet, backend="reference")
        flagged = executor.run(
            fleet, backend="reference", collect_flags=True
        )
        assert counted.hit_stream is None
        name = trio[0].name
        assert (
            counted.telemetry[name].samples
            == flagged.telemetry[name].samples
        )

    @settings(max_examples=20, deadline=None)
    @given(case=fleet_scenario())
    def test_property_bit_identical(self, case):
        geometry, fleet, config = case
        executor = FleetExecutor(geometry, TIMING, config)
        fast = executor.run(
            fleet,
            broker=ColumnBroker(geometry, TIMING),
            backend="lockstep",
            collect_flags=True,
        )
        reference = executor.run(
            fleet,
            broker=ColumnBroker(geometry, TIMING),
            backend="reference",
            collect_flags=True,
        )
        assert_identical(fast, reference)

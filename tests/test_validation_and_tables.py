"""Tests for validation helpers and table rendering."""

import pytest

from repro.utils.tables import format_series, format_table
from repro.utils.validation import (
    check_alignment,
    check_non_negative,
    check_positive,
    check_power_of_two,
    is_power_of_two,
    log2_exact,
)


class TestValidation:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)
        assert not is_power_of_two(3)
        assert not is_power_of_two(2.0)

    def test_check_positive_accepts(self):
        assert check_positive(3, "x") == 3

    @pytest.mark.parametrize("value", [0, -1, 1.5, True, "2"])
    def test_check_positive_rejects(self, value):
        with pytest.raises(ValueError):
            check_positive(value, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0, "x") == 0
        with pytest.raises(ValueError):
            check_non_negative(-1, "x")

    def test_check_power_of_two(self):
        assert check_power_of_two(64, "x") == 64
        with pytest.raises(ValueError, match="power of two"):
            check_power_of_two(48, "x")

    def test_check_alignment(self):
        assert check_alignment(0x40, 16, "x") == 0x40
        with pytest.raises(ValueError, match="aligned"):
            check_alignment(0x41, 16, "x")

    def test_log2_exact(self):
        assert log2_exact(256) == 8
        with pytest.raises(ValueError):
            log2_exact(100)


class TestTables:
    def test_basic_render(self):
        text = format_table(["name", "n"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].split() == ["name", "n"]
        assert lines[2].split() == ["a", "1"]

    def test_float_formatting(self):
        text = format_table(["v"], [[1.23456]], float_format=".2f")
        assert "1.23" in text

    def test_numeric_columns_right_aligned(self):
        text = format_table(["n"], [[1], [100]])
        lines = text.splitlines()
        assert lines[2] == "  1"
        assert lines[3] == "100"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_title(self):
        assert format_table(["a"], [[1]], title="T").startswith("T\n")

    def test_bool_rendering(self):
        assert "yes" in format_table(["a"], [[True]])

    def test_series_render(self):
        text = format_series("x", [1, 2], {"y": [10, 20]})
        assert "x" in text and "y" in text and "20" in text

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError, match="points"):
            format_series("x", [1, 2], {"y": [10]})

"""Tests for the round-robin multitasking simulator."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.sim.config import TimingConfig
from repro.sim.multitask import Job, JobResult, MultitaskSimulator
from repro.trace.generator import looped_working_set
from repro.utils.bitvector import ColumnMask

TIMING = TimingConfig(miss_penalty=10)


def geometry(sets=16, columns=4):
    return CacheGeometry(line_size=16, sets=sets, columns=columns)


def hot_job(name, offset, working_set=256, passes=4):
    trace = looped_working_set(
        0, working_set_bytes=working_set, passes=passes, variable=name
    )
    return Job(name=name, trace=trace, address_offset=offset)


class TestScheduling:
    def test_instruction_budget_respected(self):
        sim = MultitaskSimulator(
            geometry(), [hot_job("a", 0), hot_job("b", 1 << 20)], TIMING
        )
        results = sim.run(quantum_instructions=16, total_instructions=400)
        total = sum(r.instructions for r in results.values())
        assert total >= 400
        # Overshoot bounded by one quantum + one access.
        assert total <= 400 + 16 + 1

    def test_round_robin_fairness(self):
        sim = MultitaskSimulator(
            geometry(),
            [hot_job("a", 0), hot_job("b", 1 << 20), hot_job("c", 2 << 20)],
            TIMING,
        )
        results = sim.run(quantum_instructions=8, total_instructions=3000)
        counts = [r.instructions for r in results.values()]
        assert max(counts) - min(counts) <= 16

    def test_quantum_one_switches_every_access(self):
        sim = MultitaskSimulator(
            geometry(), [hot_job("a", 0), hot_job("b", 1 << 20)], TIMING
        )
        results = sim.run(quantum_instructions=1, total_instructions=100)
        for result in results.values():
            assert result.quanta == result.accesses

    def test_traces_wrap(self):
        job = hot_job("a", 0, working_set=64, passes=1)  # 32 accesses
        sim = MultitaskSimulator(geometry(), [job], TIMING)
        results = sim.run(quantum_instructions=1000, total_instructions=200)
        assert results["a"].wraps >= 5

    def test_empty_trace_rejected(self):
        from repro.trace.trace import Trace

        with pytest.raises(ValueError, match="empty trace"):
            MultitaskSimulator(
                geometry(), [Job(name="a", trace=Trace.empty())], TIMING
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MultitaskSimulator(
                geometry(), [hot_job("a", 0), hot_job("a", 1 << 20)], TIMING
            )

    def test_invalid_quantum(self):
        sim = MultitaskSimulator(geometry(), [hot_job("a", 0)], TIMING)
        with pytest.raises(ValueError):
            sim.run(quantum_instructions=0, total_instructions=10)

    def test_determinism(self):
        def run_once():
            sim = MultitaskSimulator(
                geometry(), [hot_job("a", 0), hot_job("b", 1 << 20)], TIMING
            )
            return sim.run(quantum_instructions=4, total_instructions=500)

        first = run_once()
        second = run_once()
        for name in first:
            assert first[name].misses == second[name].misses
            assert first[name].instructions == second[name].instructions


class TestIsolation:
    def test_mapped_job_immune_to_interference(self):
        """The Figure 5 mechanism in miniature: job A's misses at small
        quanta drop to its solo level once isolated in its own columns."""
        size = geometry(sets=16, columns=4)  # 1 KB cache
        # Job A fits its 2-column partition exactly; A + B exceed the
        # whole cache, so the unmapped configuration must thrash.
        def build_jobs(mapped):
            job_a = hot_job("a", 0, working_set=512, passes=8)
            job_b = hot_job("b", 1 << 20, working_set=768, passes=8)
            if mapped:
                job_a.mask = ColumnMask.of(0, 1, width=4)
                job_b.mask = ColumnMask.of(2, 3, width=4)
            return [job_a, job_b]

        def misses(mapped):
            sim = MultitaskSimulator(size, build_jobs(mapped), TIMING)
            sim.warm_up(1)
            results = sim.run(quantum_instructions=4,
                              total_instructions=2000)
            return results["a"].misses

        assert misses(mapped=True) == 0  # working set fits 2 columns
        assert misses(mapped=False) > 0  # thrashes against job b

    def test_warm_up_resets_counters(self):
        sim = MultitaskSimulator(geometry(), [hot_job("a", 0)], TIMING)
        sim.warm_up(1)
        results = sim.results()
        assert results["a"].instructions == 0
        assert results["a"].misses == 0

    def test_warm_up_populates_cache(self):
        job = hot_job("a", 0, working_set=128, passes=1)
        sim = MultitaskSimulator(geometry(), [job], TIMING)
        sim.warm_up(1)
        results = sim.run(quantum_instructions=100,
                          total_instructions=len(job.trace))
        assert results["a"].misses == 0

    def test_mask_width_validated(self):
        job = hot_job("a", 0)
        job.mask = ColumnMask.of(0, width=8)
        with pytest.raises(ValueError, match="width"):
            MultitaskSimulator(geometry(columns=4), [job], TIMING)


class TestJobResult:
    def test_cpi_formula(self):
        result = JobResult(
            name="a", instructions=100, accesses=50, hits=40, misses=10,
        )
        assert result.cpi(TIMING) == (100 + 10 * 10) / 100

    def test_cpi_with_switch_cost(self):
        timing = TimingConfig(miss_penalty=0, context_switch_cycles=5)
        result = JobResult(
            name="a", instructions=100, accesses=50, quanta=4,
        )
        assert result.cpi(timing) == (100 + 20) / 100

    def test_zero_instructions(self):
        assert JobResult(name="a").cpi(TIMING) == 0.0
        assert JobResult(name="a").miss_rate == 0.0

    def test_miss_rate(self):
        result = JobResult(name="a", accesses=10, misses=3)
        assert result.miss_rate == 0.3

"""The Poisson fleet-trace generator: determinism and structure."""

import pytest

from repro.fleet import (
    WorkloadMixEntry,
    generate_fleet_trace,
    single_tenant_trace,
)
from repro.fleet.tenant import TENANT_SPACE_BITS
from repro.workloads.suite import make_workload

MIX = (
    WorkloadMixEntry("crc32", (("message_bytes", 256),), weight=2.0),
    WorkloadMixEntry(
        "histogram",
        (("sample_count", 256), ("bin_count", 32)),
        weight=1.0,
    ),
)


def generate(seed=3, **kwargs):
    defaults = dict(
        horizon_instructions=120_000,
        mix=MIX,
        mean_interarrival=10_000,
        mean_service=40_000,
        seed=seed,
        priorities=(1, 2),
    )
    defaults.update(kwargs)
    return generate_fleet_trace(**defaults)


class TestGenerator:
    def test_deterministic_per_seed(self):
        first, second = generate(seed=3), generate(seed=3)
        assert len(first.events) == len(second.events)
        for a, b in zip(first.events, second.events):
            assert (a.time, a.kind, a.name) == (b.time, b.kind, b.name)

    def test_seeds_differ(self):
        def times(fleet):
            return [event.time for event in fleet.events]

        assert times(generate(seed=3)) != times(generate(seed=4))

    def test_events_sorted_and_departures_follow_arrivals(self):
        fleet = generate()
        times = [event.time for event in fleet.events]
        assert times == sorted(times)
        arrival_at = {
            event.name: event.time
            for event in fleet.events
            if event.kind == "arrival"
        }
        for event in fleet.events:
            if event.kind == "departure":
                assert event.tenant in arrival_at
                assert event.time > arrival_at[event.tenant]

    def test_tenants_unique_and_disjoint_address_spaces(self):
        fleet = generate()
        specs = fleet.specs()
        names = [spec.name for spec in specs]
        assert len(set(names)) == len(names)
        offsets = [spec.address_offset for spec in specs]
        assert len(set(offsets)) == len(offsets)
        assert all(
            offset % (1 << TENANT_SPACE_BITS) == 0 for offset in offsets
        )

    def test_priorities_from_palette(self):
        fleet = generate(priorities=(2, 5))
        assert fleet.specs()
        assert all(
            spec.priority in (2, 5) for spec in fleet.specs()
        )

    def test_max_arrivals_cap(self):
        fleet = generate(max_arrivals=2)
        assert len(fleet.specs()) <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            generate(mix=())
        with pytest.raises(ValueError):
            generate(mean_interarrival=0)
        with pytest.raises(ValueError):
            generate(mean_service=-1)


class TestSingleTenant:
    def test_single_tenant_trace(self):
        run = make_workload("crc32", message_bytes=256).record()
        from repro.fleet import TenantSpec

        spec = TenantSpec(name="solo", run=run)
        fleet = single_tenant_trace(spec, 5_000)
        assert fleet.horizon_instructions == 5_000
        assert len(fleet.events) == 1
        assert fleet.events[0].kind == "arrival"
        assert fleet.events[0].spec is spec

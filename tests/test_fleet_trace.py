"""The Poisson fleet-trace generator: determinism and structure."""

import pytest

from repro.fleet import (
    WorkloadMixEntry,
    generate_fleet_trace,
    single_tenant_trace,
)
from repro.fleet.tenant import TENANT_SPACE_BITS
from repro.fleet.trace import tenant_workload_seeds
from repro.workloads.suite import make_workload

MIX = (
    WorkloadMixEntry("crc32", (("message_bytes", 256),), weight=2.0),
    WorkloadMixEntry(
        "histogram",
        (("sample_count", 256), ("bin_count", 32)),
        weight=1.0,
    ),
)


def generate(seed=3, **kwargs):
    defaults = dict(
        horizon_instructions=120_000,
        mix=MIX,
        mean_interarrival=10_000,
        mean_service=40_000,
        seed=seed,
        priorities=(1, 2),
    )
    defaults.update(kwargs)
    return generate_fleet_trace(**defaults)


class TestTenantSeeds:
    """Regression: ``seed * 1000 + index`` collided across roots."""

    def test_no_collisions_across_neighbouring_roots(self):
        # Old scheme: root 0 tenant 1000 == root 1 tenant 0 == 1000.
        first = tenant_workload_seeds(0, 1500)
        second = tenant_workload_seeds(1, 1500)
        assert not set(first) & set(second)
        assert len(set(first)) == 1500

    def test_root_zero_does_not_alias_bare_workload_seeds(self):
        # Old scheme: root 0 produced seeds 0, 1, 2, ... — exactly the
        # bare seeds solo workload runs record with.
        assert not set(tenant_workload_seeds(0, 100)) & set(range(100))

    def test_default_seed_outputs_pinned(self):
        """Spawn-derived seeds are deterministic; pin them so a numpy
        upgrade or refactor cannot silently reshuffle every fleet
        experiment."""
        assert tenant_workload_seeds(3, 4) == [
            819382448,
            1645421708,
            3451799802,
            118549108,
        ]
        fleet = generate(seed=3)
        head = [
            (event.time, event.kind, event.name)
            for event in fleet.events[:4]
        ]
        assert head == [
            (0, "arrival", "crc32-0"),
            (22001, "arrival", "crc32-1"),
            (26346, "arrival", "crc32-2"),
            (28998, "departure", "crc32-2"),
        ]
        first = fleet.specs()[0].run.trace
        assert len(first) == 512
        assert int(first.addresses.sum()) == 33791536


class TestGenerator:
    def test_deterministic_per_seed(self):
        first, second = generate(seed=3), generate(seed=3)
        assert len(first.events) == len(second.events)
        for a, b in zip(first.events, second.events):
            assert (a.time, a.kind, a.name) == (b.time, b.kind, b.name)

    def test_seeds_differ(self):
        def times(fleet):
            return [event.time for event in fleet.events]

        assert times(generate(seed=3)) != times(generate(seed=4))

    def test_events_sorted_and_departures_follow_arrivals(self):
        fleet = generate()
        times = [event.time for event in fleet.events]
        assert times == sorted(times)
        arrival_at = {
            event.name: event.time
            for event in fleet.events
            if event.kind == "arrival"
        }
        for event in fleet.events:
            if event.kind == "departure":
                assert event.tenant in arrival_at
                assert event.time > arrival_at[event.tenant]

    def test_tenants_unique_and_disjoint_address_spaces(self):
        fleet = generate()
        specs = fleet.specs()
        names = [spec.name for spec in specs]
        assert len(set(names)) == len(names)
        offsets = [spec.address_offset for spec in specs]
        assert len(set(offsets)) == len(offsets)
        assert all(
            offset % (1 << TENANT_SPACE_BITS) == 0 for offset in offsets
        )

    def test_priorities_from_palette(self):
        fleet = generate(priorities=(2, 5))
        assert fleet.specs()
        assert all(
            spec.priority in (2, 5) for spec in fleet.specs()
        )

    def test_max_arrivals_cap(self):
        fleet = generate(max_arrivals=2)
        assert len(fleet.specs()) <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            generate(mix=())
        with pytest.raises(ValueError):
            generate(mean_interarrival=0)
        with pytest.raises(ValueError):
            generate(mean_service=-1)


class TestSingleTenant:
    def test_single_tenant_trace(self):
        run = make_workload("crc32", message_bytes=256).record()
        from repro.fleet import TenantSpec

        spec = TenantSpec(name="solo", run=run)
        fleet = single_tenant_trace(spec, 5_000)
        assert fleet.horizon_instructions == 5_000
        assert len(fleet.events) == 1
        assert fleet.events[0].kind == "arrival"
        assert fleet.events[0].spec is spec

"""Equivalence tests for the lockstep kernel and the sharded path.

The lockstep kernel, the set-sharded runner and the chunked streaming
entry point must all be bit-identical to the scalar
:class:`~repro.cache.fastsim.FastColumnCache` — same hit, miss and
bypass counts on every trace, for every mask shape, at every
scalar-cutoff setting (the cutoff only moves the vector/scalar
boundary, never the results).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.fastsim import FastColumnCache
from repro.cache.geometry import CacheGeometry
from repro.sim.engine.batched import (
    LockstepCache,
    LockstepState,
    batched_simulate,
    lockstep_run,
)
from repro.sim.engine.sharded import shard_blocks, simulate_trace_sharded


def counts(result):
    return (result.hits, result.misses, result.bypasses)


@st.composite
def kernel_case(draw):
    """Random (geometry, blocks, masks, cutoff) tuple."""
    sets = draw(st.sampled_from([1, 2, 4, 8, 16]))
    columns = draw(st.integers(1, 8))
    geometry = CacheGeometry(line_size=16, sets=sets, columns=columns)
    length = draw(st.integers(1, 300))
    block_span = draw(st.sampled_from([4, 64, 1024]))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    blocks = rng.integers(0, block_span, length).astype(np.int64)
    mask_kind = draw(st.sampled_from(["none", "uniform", "per-access"]))
    uniform = None
    masks = None
    if mask_kind == "uniform":
        uniform = draw(st.integers(0, (1 << columns) - 1))
    elif mask_kind == "per-access":
        masks = rng.integers(0, 1 << columns, length).astype(np.int64)
    cutoff = draw(st.sampled_from([0, 3, 10_000]))
    return geometry, blocks, masks, uniform, cutoff


class TestLockstepEquivalence:
    @given(case=kernel_case())
    @settings(max_examples=120, deadline=None)
    def test_counts_match_scalar(self, case):
        geometry, blocks, masks, uniform, cutoff = case
        cache = FastColumnCache(geometry)
        if masks is not None:
            reference = cache.run(blocks.tolist(), mask_bits=masks.tolist())
        else:
            reference = cache.run(blocks.tolist(), uniform_mask=uniform)
        batched = batched_simulate(
            blocks,
            geometry,
            mask_bits=masks,
            uniform_mask=uniform,
            scalar_cutoff=cutoff,
        )
        assert counts(batched) == counts(reference)

    @given(case=kernel_case())
    @settings(max_examples=60, deadline=None)
    def test_flags_match_scalar_flags(self, case):
        geometry, blocks, masks, uniform, cutoff = case
        cache = FastColumnCache(geometry)
        if masks is not None:
            reference = cache.run_with_flags(
                blocks.tolist(), mask_bits=masks.tolist()
            )
        else:
            reference = cache.run_with_flags(
                blocks.tolist(), uniform_mask=uniform
            )
        _, hit_flags, _ = batched_simulate(
            blocks,
            geometry,
            mask_bits=masks,
            uniform_mask=uniform,
            scalar_cutoff=cutoff,
            return_flags=True,
        )
        assert np.array_equal(hit_flags, reference)

    def test_state_persists_across_calls(self):
        geometry = CacheGeometry(line_size=16, sets=8, columns=4)
        rng = np.random.default_rng(3)
        blocks = rng.integers(0, 256, 4000).astype(np.int64)
        cache = FastColumnCache(geometry)
        first = cache.run(blocks[:2000].tolist())
        second = cache.run(blocks[2000:].tolist())
        state = LockstepState.cold(geometry.sets, geometry.columns)
        batched_first = batched_simulate(blocks[:2000], geometry, state=state)
        batched_second = batched_simulate(blocks[2000:], geometry, state=state)
        assert counts(batched_first) == counts(first)
        assert counts(batched_second) == counts(second)

    def test_stacked_rows_are_independent(self):
        """Two points stacked with a row offset equal two separate runs."""
        geometry = CacheGeometry(line_size=16, sets=4, columns=2)
        rng = np.random.default_rng(4)
        blocks_a = rng.integers(0, 64, 500).astype(np.int64)
        blocks_b = rng.integers(0, 64, 500).astype(np.int64)
        separate_a = batched_simulate(blocks_a, geometry)
        separate_b = batched_simulate(blocks_b, geometry)
        state = LockstepState.cold(2 * geometry.sets, geometry.columns)
        rows = np.concatenate(
            (
                blocks_a & (geometry.sets - 1),
                (blocks_b & (geometry.sets - 1)) + geometry.sets,
            )
        )
        tags = np.concatenate(
            (
                blocks_a >> geometry.index_bits,
                blocks_b >> geometry.index_bits,
            )
        )
        hit_flags, _ = lockstep_run(rows, tags, state)
        assert int(hit_flags[:500].sum()) == separate_a.hits
        assert int(hit_flags[500:].sum()) == separate_b.hits

    def test_rejects_both_mask_kinds(self):
        state = LockstepState.cold(4, 2)
        with pytest.raises(ValueError, match="not both"):
            lockstep_run(
                np.zeros(1, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                state,
                mask_bits=np.ones(1, dtype=np.int64),
                uniform_mask=1,
            )

    def test_empty_trace(self):
        state = LockstepState.cold(4, 2)
        hit, bypass = lockstep_run(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), state
        )
        assert len(hit) == 0 and len(bypass) == 0


class TestCompactDtypeGate:
    """The int32 hot path must refuse when *any* tag is wide —
    including tags already resident from a previous batch."""

    def test_wide_resident_tag_then_small_batch(self):
        geometry = CacheGeometry(line_size=16, sets=4, columns=2)
        # Row 0 holds a tag >= 2^31; a later small-tag batch must not
        # narrow the resident state and falsely hit.
        wide = np.array([(1 << 36) + 7 * 4], dtype=np.int64)
        small = np.array([7 * 4], dtype=np.int64)
        lock = LockstepCache(geometry)
        lock.run(wide)
        outcome = lock.run(small)
        reference = FastColumnCache(geometry)
        reference.run(wide.tolist())
        expected = reference.run(small.tolist())
        assert (outcome.hits, outcome.misses) == (
            expected.hits,
            expected.misses,
        )

    def test_wide_and_narrow_batches_match_scalar(self):
        geometry = CacheGeometry(line_size=16, sets=8, columns=4)
        rng = np.random.default_rng(11)
        wide = (
            rng.integers(0, 64, 300).astype(np.int64) + (1 << 40)
        ) * 16
        narrow = rng.integers(0, 1024, 300).astype(np.int64) * 16
        for first, second in ((wide, narrow), (narrow, wide)):
            lock = LockstepCache(geometry)
            scalar = FastColumnCache(geometry)
            for batch in (first >> 4, second >> 4):
                lock_flags = lock.run_with_flags(batch)
                scalar_flags = scalar.run_with_flags(batch.tolist())
                assert np.array_equal(lock_flags, scalar_flags)


class TestShardedEquivalence:
    @given(case=kernel_case(), workers=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_counts_match_scalar(self, case, workers):
        geometry, blocks, masks, uniform, _cutoff = case
        cache = FastColumnCache(geometry)
        if masks is not None:
            reference = cache.run(blocks.tolist(), mask_bits=masks.tolist())
        else:
            reference = cache.run(blocks.tolist(), uniform_mask=uniform)
        # workers=1 exercises the inline shard path; the process-pool
        # path is covered once below (pool startup is expensive).
        sharded = simulate_trace_sharded(
            blocks,
            geometry,
            mask_bits=masks,
            uniform_mask=uniform,
            workers=1,
        )
        assert counts(sharded) == counts(reference)
        del workers

    def test_shards_partition_all_accesses(self):
        geometry = CacheGeometry(line_size=16, sets=8, columns=2)
        blocks = np.arange(100, dtype=np.int64)
        positions = shard_blocks(blocks, geometry, 3)
        merged = np.sort(np.concatenate(positions))
        assert np.array_equal(merged, np.arange(100))

    def test_process_pool_matches_serial(self):
        geometry = CacheGeometry(line_size=16, sets=16, columns=4)
        rng = np.random.default_rng(9)
        blocks = rng.integers(0, 4096, 20_000).astype(np.int64)
        reference = FastColumnCache(geometry).run(blocks.tolist())
        pooled = simulate_trace_sharded(blocks, geometry, workers=2)
        assert counts(pooled) == counts(reference)


class TestChunkedRun:
    def test_chunked_equals_single_run(self):
        geometry = CacheGeometry(line_size=16, sets=8, columns=4)
        rng = np.random.default_rng(5)
        blocks = rng.integers(0, 512, 10_000).astype(np.int64)
        masks = rng.integers(0, 16, 10_000).astype(np.int64)
        reference = FastColumnCache(geometry).run(
            blocks.tolist(), mask_bits=masks.tolist()
        )
        streaming = FastColumnCache(geometry).run_chunked(
            blocks, mask_bits=masks, chunk_size=777
        )
        assert counts(streaming) == counts(reference)

    def test_chunked_uniform_mask(self):
        geometry = CacheGeometry(line_size=16, sets=4, columns=2)
        blocks = np.arange(1000, dtype=np.int64) % 64
        reference = FastColumnCache(geometry).run(
            blocks.tolist(), uniform_mask=0b01
        )
        streaming = FastColumnCache(geometry).run_chunked(
            blocks, uniform_mask=0b01, chunk_size=64
        )
        assert counts(streaming) == counts(reference)

    def test_chunk_size_validation(self):
        geometry = CacheGeometry(line_size=16, sets=4, columns=2)
        with pytest.raises(ValueError, match="chunk_size"):
            FastColumnCache(geometry).run_chunked(
                np.zeros(1, dtype=np.int64), chunk_size=0
            )

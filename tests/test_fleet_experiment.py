"""The fleet experiment: runners, series assembly, shape checks."""

import json

import pytest

from repro.experiments.fleet import (
    FleetComparisonConfig,
    TenantCase,
    check_fleet,
    run_fleet_comparison,
)
from repro.experiments.runners import (
    fleet_churn_point,
    fleet_isolation_point,
)
from repro.sim.engine.scheduler import SweepEngine

TINY = FleetComparisonConfig(
    tenants=(
        TenantCase("crc32", kwargs=(("message_bytes", 256),)),
        TenantCase(
            "histogram",
            kwargs=(("sample_count", 256), ("bin_count", 32)),
        ),
    ),
    columns=8,
    sets=32,
    quantum_instructions=128,
    window_instructions=2048,
    horizon_instructions=30_000,
    ramp_windows=1,
    equal_slots=2,
    churn_columns=4,
    churn_horizon=40_000,
    churn_mean_interarrival=8_000.0,
    churn_mean_service=20_000.0,
)


class TestJobs:
    def test_jobs_are_content_hashable(self):
        config = FleetComparisonConfig()
        for job in (config.isolation_job(), config.churn_job()):
            digest = job.content_hash()
            assert len(digest) == 64
            json.dumps(dict(job.params))  # engine-cacheable params

    def test_quick_shrinks_horizons(self):
        config = FleetComparisonConfig()
        quick = config.quick()
        assert quick.horizon_instructions < config.horizon_instructions
        assert quick.churn_horizon < config.churn_horizon


class TestRunners:
    def test_isolation_point_structure(self):
        payload = TINY.isolation_job().execute()
        assert payload["tenant_order"] == ["crc32-0", "histogram-1"]
        for name in payload["tenant_order"]:
            entry = payload["tenants"][name]
            for key in (
                "solo_cpi",
                "broker_cpi",
                "broker_ratio",
                "shared_cpi",
                "shared_ratio",
                "equal_cpi",
                "equal_ratio",
                "broker_columns",
            ):
                assert key in entry
            assert entry["solo_cpi"] >= 1.0
            assert entry["broker_columns"] >= 1
        json.dumps(payload)

    def test_churn_point_structure(self):
        payload = TINY.churn_job().execute()
        assert payload["arrivals"] >= 1
        assert (
            payload["admissions"] + payload["rejections"]
            <= payload["arrivals"]
            + payload["rejections"]
        )
        assert isinstance(payload["rejections_at_capacity_only"], bool)
        assert payload["disjoint_ok"] is True
        assert payload["total_instructions"] >= 0
        json.dumps(payload)

    def test_runner_params_round_trip(self):
        """Runners accept exactly what the job declares (the engine
        calls them in worker processes with deserialized params)."""
        isolation = TINY.isolation_job()
        churn = TINY.churn_job()
        fleet_isolation_point(
            **json.loads(json.dumps(dict(isolation.params)))
        )
        fleet_churn_point(**json.loads(json.dumps(dict(churn.params))))


class TestComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fleet_comparison(
            TINY, SweepEngine(workers=1, backend="serial")
        )

    def test_series_shape(self, result):
        assert result.series.x_values == ["crc32-0", "histogram-1"]
        for label in (
            "solo_cpi",
            "broker_cpi",
            "broker_ratio",
            "shared_cpi",
            "shared_ratio",
            "equal_cpi",
            "equal_ratio",
            "broker_columns",
        ):
            assert label in result.series.series
        table = result.series.to_table()
        assert "fleet-serving" in table
        assert "churn" in table.lower()

    def test_checks_render(self, result):
        checks = check_fleet(result)
        assert len(checks) >= 5
        for check in checks:
            assert check.claim
            assert isinstance(check.passed, bool)

    def test_tenant_accessor(self, result):
        entry = result.tenant("crc32-0")
        assert entry["broker_ratio"] > 0

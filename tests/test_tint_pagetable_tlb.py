"""Tests for tints, the page table and the TLB — the Figure 3 semantics."""

import pytest

from repro.mem.page_table import PageTable
from repro.mem.tint import DEFAULT_TINT, TintTable
from repro.mem.tlb import TLB
from repro.utils.bitvector import ColumnMask


class TestTintTable:
    def test_default_tint_is_all_columns(self):
        tints = TintTable(columns=4)
        assert tints.mask_of(DEFAULT_TINT).is_full()

    def test_define_and_lookup(self):
        tints = TintTable(columns=4)
        tints.define("blue", ColumnMask.of(1, width=4))
        assert tints.mask_of("blue").columns() == (1,)

    def test_duplicate_define_rejected(self):
        tints = TintTable(columns=4)
        tints.define("blue", ColumnMask.of(1, width=4))
        with pytest.raises(ValueError, match="already defined"):
            tints.define("blue", ColumnMask.of(2, width=4))

    def test_remap_is_fast_reconfiguration(self):
        tints = TintTable(columns=4)
        tints.define("blue", ColumnMask.of(1, width=4))
        tints.remap("blue", ColumnMask.of(2, 3, width=4))
        assert tints.mask_of("blue").columns() == (2, 3)
        assert tints.remap_count == 1

    def test_remap_unknown_raises(self):
        tints = TintTable(columns=4)
        with pytest.raises(KeyError):
            tints.remap("nope", ColumnMask.none(4))

    def test_wrong_width_rejected(self):
        tints = TintTable(columns=4)
        with pytest.raises(ValueError, match="width"):
            tints.define("blue", ColumnMask.of(1, width=8))

    def test_cannot_remove_default(self):
        tints = TintTable(columns=4)
        with pytest.raises(ValueError):
            tints.remove(DEFAULT_TINT)

    def test_figure3_scenario(self):
        """The paper's Figure 3: give one page its own column."""
        tints = TintTable(columns=4)
        # Tint blue -> second column only.
        tints.define("blue", ColumnMask.from_string("0 1 0 0"))
        # Tint red loses the second column.
        tints.remap(
            DEFAULT_TINT, tints.mask_of(DEFAULT_TINT).without_column(1)
        )
        assert tints.mask_of(DEFAULT_TINT).to_string() == "1 0 1 1"
        assert not tints.mask_of("blue").overlaps(tints.mask_of(DEFAULT_TINT))


class TestPageTable:
    def test_implicit_default_entry(self):
        table = PageTable(page_size=64)
        entry = table.entry(7)
        assert entry.tint == DEFAULT_TINT
        assert entry.cached

    def test_set_tint(self):
        table = PageTable(page_size=64)
        table.set_tint(3, "blue")
        assert table.entry(3).tint == "blue"
        assert table.version == 1

    def test_set_tint_range_cost_proportional_to_pages(self):
        table = PageTable(page_size=64)
        written = table.set_tint_range(range(10), "blue")
        assert written == 10
        assert table.version == 10

    def test_set_cached(self):
        table = PageTable(page_size=64)
        table.set_cached(2, False)
        assert not table.entry(2).cached

    def test_entry_for_address(self):
        table = PageTable(page_size=64)
        table.set_tint(2, "blue")
        assert table.entry_for_address(2 * 64 + 5).tint == "blue"

    def test_tinted_pages(self):
        table = PageTable(page_size=64)
        table.set_tint(5, "blue")
        table.set_tint(1, "blue")
        table.set_tint(2, "green")
        assert table.tinted_pages("blue") == [1, 5]


class TestTLB:
    def test_miss_then_hit(self):
        table = PageTable(page_size=64)
        tlb = TLB(page_table=table, capacity=4)
        tlb.lookup(0x100)
        tlb.lookup(0x104)
        assert tlb.stats.misses == 1
        assert tlb.stats.hits == 1

    def test_lru_eviction(self):
        table = PageTable(page_size=64)
        tlb = TLB(page_table=table, capacity=2)
        tlb.lookup(0 * 64)
        tlb.lookup(1 * 64)
        tlb.lookup(2 * 64)  # evicts page 0
        assert tlb.peek(0) is None
        assert tlb.peek(1) is not None

    def test_lru_refresh_on_hit(self):
        table = PageTable(page_size=64)
        tlb = TLB(page_table=table, capacity=2)
        tlb.lookup(0 * 64)
        tlb.lookup(1 * 64)
        tlb.lookup(0 * 64)  # refresh page 0
        tlb.lookup(2 * 64)  # evicts page 1
        assert tlb.peek(0) is not None
        assert tlb.peek(1) is None

    def test_retint_without_flush_leaves_stale_mapping(self):
        """The Figure 3 hazard: TLB must be flushed after re-tinting."""
        table = PageTable(page_size=64)
        tlb = TLB(page_table=table, capacity=8)
        tlb.lookup(0x100)
        table.set_tint(0x100 // 64, "blue")
        # The stale entry still reports the old tint.
        assert tlb.lookup(0x100).tint == DEFAULT_TINT
        assert not tlb.is_coherent()

    def test_flush_restores_coherence(self):
        table = PageTable(page_size=64)
        tlb = TLB(page_table=table, capacity=8)
        tlb.lookup(0x100)
        table.set_tint(0x100 // 64, "blue")
        tlb.flush()
        assert tlb.lookup(0x100).tint == "blue"
        assert tlb.is_coherent()
        assert tlb.stats.flushes == 1

    def test_update_page_in_place(self):
        """The paper's "modified in place" alternative to flushing."""
        table = PageTable(page_size=64)
        tlb = TLB(page_table=table, capacity=8)
        tlb.lookup(0x100)
        vpn = 0x100 // 64
        table.set_tint(vpn, "blue")
        assert tlb.update_page(vpn)
        assert tlb.lookup(0x100).tint == "blue"
        assert tlb.stats.page_updates == 1

    def test_update_absent_page_returns_false(self):
        table = PageTable(page_size=64)
        tlb = TLB(page_table=table, capacity=8)
        assert not tlb.update_page(9)

    def test_flush_page(self):
        table = PageTable(page_size=64)
        tlb = TLB(page_table=table, capacity=8)
        tlb.lookup(0x100)
        assert tlb.flush_page(0x100 // 64)
        assert not tlb.flush_page(0x100 // 64)

    def test_hit_rate(self):
        table = PageTable(page_size=64)
        tlb = TLB(page_table=table, capacity=8)
        assert tlb.stats.hit_rate == 0.0
        tlb.lookup(0)
        tlb.lookup(0)
        assert tlb.stats.hit_rate == 0.5

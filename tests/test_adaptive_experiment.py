"""The adaptive comparison experiment and its CLI entry point."""

import pytest

from repro.experiments.adaptive import (
    AdaptiveComparisonConfig,
    check_adaptive,
    run_adaptive_comparison,
)
from repro.experiments.cli import main as experiments_main
from repro.experiments.report import all_passed, render_checks
from repro.sim.engine.scheduler import SweepEngine


@pytest.fixture(scope="module")
def quick_result():
    config = AdaptiveComparisonConfig().quick()
    engine = SweepEngine(workers=1, backend="serial")
    return run_adaptive_comparison(config, engine)


class TestAdaptiveComparison:
    def test_all_shape_checks_pass(self, quick_result):
        checks = check_adaptive(quick_result)
        assert all_passed(checks), render_checks(checks)

    def test_adaptive_wins_on_packet(self, quick_result):
        """The acceptance criterion: CPI <= best static layout on a
        phase-heavy workload, discovered online."""
        point = quick_result.point("packet")
        assert point["adaptive_cpi"] <= point["best_static_cpi"]
        assert point["remaps"] >= 4

    def test_series_covers_every_workload(self, quick_result):
        series = quick_result.series
        assert series.x_values == ["packet", "twopass", "fft_phased"]
        for label in (
            "best_static_cpi", "page_coloring_cpi", "adaptive_cpi",
            "remaps",
        ):
            assert len(series.series[label]) == 3
        table = series.to_table()
        assert "adaptive_cpi" in table

    def test_static_candidates_include_phase_oracle(self, quick_result):
        point = quick_result.point("packet")
        labels = set(point["static_cycles"])
        assert {"standard", "full_profile"} <= labels
        assert any(label.startswith("phase:") for label in labels)
        assert point["best_static_cycles"] == min(
            point["static_cycles"].values()
        )

    def test_results_are_engine_cacheable(self, tmp_path):
        """Repeat runs are served from the content-addressed cache."""
        config = AdaptiveComparisonConfig().quick()
        engine = SweepEngine(
            workers=1, backend="serial", cache_dir=tmp_path
        )
        run_adaptive_comparison(config, engine)
        assert engine.stats["executed"] == 3
        run_adaptive_comparison(config, engine)
        assert engine.stats["executed"] == 3
        assert engine.stats["from_cache"] == 3


class TestCLI:
    def test_adaptive_quick_smoke(self, capsys):
        code = experiments_main(["adaptive", "--quick"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "adaptive-comparison" in captured
        assert "all shape checks passed" in captured

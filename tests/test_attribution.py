"""Tests for per-variable cost attribution."""

from repro.layout.algorithm import DataLayoutPlanner, LayoutConfig
from repro.sim.config import TimingConfig
from repro.sim.executor import TraceExecutor
from repro.workloads.base import Workload
from repro.workloads.mpeg import IdctRoutine

TIMING = TimingConfig(miss_penalty=10, uncached_penalty=30)


class _Mixed(Workload):
    def __init__(self, **kwargs):
        super().__init__(name="mixed", **kwargs)
        self.hot = self.array("hot", 64)
        self.stream = self.array("stream", 1024)

    def run(self) -> None:
        self.begin_phase("main")
        for index in range(1024):
            _ = self.stream[index]
            _ = self.hot[index % 64]
        self.end_phase()


def plan(run, **kwargs):
    return DataLayoutPlanner(
        LayoutConfig(columns=4, column_bytes=512, **kwargs)
    ).plan(run)


class TestAttribution:
    def test_totals_match_run(self):
        run = _Mixed().record()
        assignment = plan(run)
        executor = TraceExecutor(TIMING)
        result = executor.run(run.trace, assignment)
        costs = executor.attribute(run.trace, assignment)
        assert sum(c.accesses for c in costs.values()) == result.accesses
        assert sum(c.misses for c in costs.values()) == result.misses
        assert sum(c.stall_cycles for c in costs.values()) == (
            result.cycles - result.instructions
        )

    def test_stream_carries_the_misses(self):
        run = _Mixed().record()
        assignment = plan(run)
        costs = TraceExecutor(TIMING).attribute(run.trace, assignment)
        stream_misses = sum(
            cost.misses
            for name, cost in costs.items()
            if name.startswith("stream")
        )
        hot_misses = sum(
            cost.misses
            for name, cost in costs.items()
            if name.startswith("hot")
        )
        assert stream_misses > hot_misses

    def test_scratchpad_variable_has_no_stalls(self):
        run = _Mixed().record()
        assignment = plan(run, scratchpad_columns=1)
        costs = TraceExecutor(TIMING).attribute(run.trace, assignment)
        assert costs["hot"].misses == 0
        assert costs["hot"].stall_cycles == 0
        assert costs["hot"].accesses == 1024

    def test_uncached_attribution(self):
        run = IdctRoutine(blocks=2).record()
        assignment = DataLayoutPlanner(
            LayoutConfig(
                columns=4, column_bytes=512, scratchpad_columns=4,
                split_oversized=False,
            )
        ).plan(run)
        executor = TraceExecutor(TIMING)
        costs = executor.attribute(run.trace, assignment)
        result = executor.run(run.trace, assignment)
        assert sum(c.uncached for c in costs.values()) == (
            result.uncached_accesses
        )
        assert costs["coeffs"].uncached > 0

    def test_miss_rate(self):
        from repro.sim.executor import AttributedCost

        cost = AttributedCost(name="x", accesses=10, misses=4)
        assert cost.miss_rate == 0.4
        assert AttributedCost(name="y").miss_rate == 0.0

"""Model-based stateful testing of the column cache.

A hypothesis rule machine drives the reference :class:`ColumnCache`
with random accesses, remaps, invalidations and flushes while
maintaining a simple oracle model (a dict of resident line -> column).
After every step the cache must agree with the model on residency, and
the structural invariants must hold:

* a line's tag appears at most once per set;
* every fill lands inside the access's mask;
* occupancy never exceeds geometry bounds;
* the tag-to-way index matches the tag array exactly.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.cache.column_cache import ColumnCache
from repro.cache.geometry import CacheGeometry
from repro.utils.bitvector import ColumnMask

GEOMETRY = CacheGeometry(line_size=16, sets=4, columns=4)

addresses = st.integers(0, 1023).map(lambda v: v * 16)
masks = st.integers(1, 15).map(lambda bits: ColumnMask(bits, 4))


class ColumnCacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cache = ColumnCache(GEOMETRY)
        # Oracle: line base address -> column it resides in.
        self.resident: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule(address=addresses, mask=masks, is_write=st.booleans())
    def access(self, address, mask, is_write):
        line = GEOMETRY.line_address(address)
        expected_hit = line in self.resident
        result = self.cache.access(address, mask=mask, is_write=is_write)
        assert result.hit == expected_hit
        if result.hit:
            assert result.column == self.resident[line]
            return
        assert result.filled
        assert mask.contains(result.column)
        if result.evicted_address is not None:
            del self.resident[result.evicted_address]
        self.resident[line] = result.column

    @rule(address=addresses)
    def access_empty_mask(self, address):
        line = GEOMETRY.line_address(address)
        expected_hit = line in self.resident
        result = self.cache.access(address, mask=ColumnMask.none(4))
        assert result.hit == expected_hit
        if not result.hit:
            assert result.bypassed
            assert line not in self.resident

    @rule(address=addresses)
    def invalidate(self, address):
        line = GEOMETRY.line_address(address)
        was_resident = line in self.resident
        assert self.cache.invalidate_address(address) == was_resident
        self.resident.pop(line, None)

    @rule(mask=masks)
    def flush_columns(self, mask):
        self.cache.flush_columns(mask)
        self.resident = {
            line: column
            for line, column in self.resident.items()
            if not mask.contains(column)
        }

    @rule()
    def flush_all(self):
        self.cache.flush()
        self.resident.clear()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def residency_matches_model(self):
        cache_lines = {
            line.address: line.column
            for line in self.cache.resident_lines()
        }
        assert cache_lines == self.resident

    @invariant()
    def occupancy_within_bounds(self):
        occupancy = self.cache.occupancy()
        assert len(occupancy) == GEOMETRY.columns
        assert all(0 <= count <= GEOMETRY.sets for count in occupancy)
        assert sum(occupancy) == len(self.resident)

    @invariant()
    def no_duplicate_tags_per_set(self):
        for set_index in range(GEOMETRY.sets):
            tags = [
                line.tag
                for line in self.cache.resident_lines()
                if line.set_index == set_index
            ]
            assert len(tags) == len(set(tags))

    @invariant()
    def index_consistent_with_tags(self):
        for line in self.cache.resident_lines():
            found = self.cache.find_line(line.address)
            assert found is not None
            assert found.column == line.column


TestColumnCacheModel = ColumnCacheMachine.TestCase

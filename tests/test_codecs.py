"""Tests for the codec workloads: CRC32, ADPCM, IIR."""

import numpy as np
import pytest

from repro.workloads.codecs import (
    ADPCMEncoder,
    CRC32,
    IIRCascade,
    adpcm_decode,
    crc32_table,
    reference_crc32,
    reference_iir,
)


class TestCRC32:
    def test_matches_zlib(self):
        zlib = pytest.importorskip("zlib")
        workload = CRC32(message_bytes=512, seed=3)
        message = bytes(bytearray(workload.message.snapshot()))
        run = workload.record()
        assert run.outputs["crc"][0] == zlib.crc32(message)

    def test_matches_bitwise_reference(self):
        workload = CRC32(message_bytes=128, seed=1)
        message = bytes(bytearray(workload.message.snapshot()))
        run = workload.record()
        assert run.outputs["crc"][0] == reference_crc32(message)

    def test_table_is_hot(self):
        run = CRC32(message_bytes=256).record()
        table_accesses = len(run.trace.positions_of("crc_table"))
        assert table_accesses == 256  # one lookup per byte

    def test_table_values(self):
        table = crc32_table()
        assert table[0] == 0
        assert table[1] == 0x77073096  # well-known constant

    def test_trace_structure(self):
        run = CRC32(message_bytes=64).record()
        assert set(run.trace.variables()) == {"message", "crc_table"}


class TestADPCM:
    def test_decode_tracks_input(self):
        """ADPCM is lossy; the decoded wave must track the input within
        a few quantization steps."""
        workload = ADPCMEncoder(sample_count=512, seed=5)
        run = workload.record()
        decoded = adpcm_decode(run.outputs["codes"])
        original = run.outputs["samples"]
        error = np.abs(decoded - original)
        # Smooth input: mean tracking error well under 10% of range.
        assert error.mean() < 1500, error.mean()

    def test_codes_are_nibbles(self):
        run = ADPCMEncoder(sample_count=128).record()
        assert run.outputs["codes"].max() <= 15

    def test_compression_is_deterministic(self):
        first = ADPCMEncoder(sample_count=128, seed=9).record()
        second = ADPCMEncoder(sample_count=128, seed=9).record()
        assert np.array_equal(
            first.outputs["codes"], second.outputs["codes"]
        )

    def test_step_table_is_hot(self):
        run = ADPCMEncoder(sample_count=256).record()
        assert len(run.trace.positions_of("step_table")) == 256


class TestIIR:
    def test_matches_reference(self):
        workload = IIRCascade(signal_length=256, sections=3)
        signal = workload.signal.snapshot()
        coefficients = workload.coeffs.snapshot()
        run = workload.record()
        expected = reference_iir(signal, coefficients, sections=3)
        np.testing.assert_allclose(
            run.outputs["output"], expected, rtol=1e-12
        )

    def test_matches_scipy(self):
        scipy_signal = pytest.importorskip("scipy.signal")
        workload = IIRCascade(signal_length=128, sections=1)
        signal = workload.signal.snapshot()
        b0, b1, b2, a1, a2 = workload.coeffs.snapshot()[:5]
        run = workload.record()
        expected = scipy_signal.lfilter(
            [b0, b1, b2], [1.0, a1, a2], signal
        )
        np.testing.assert_allclose(
            run.outputs["output"], expected, rtol=1e-9
        )

    def test_state_and_coeffs_are_hot(self):
        run = IIRCascade(signal_length=128, sections=2).record()
        coeff_accesses = len(run.trace.positions_of("coeffs"))
        signal_accesses = len(run.trace.positions_of("signal"))
        assert coeff_accesses == 128 * 2 * 5
        assert signal_accesses == 128


class TestRegistry:
    @pytest.mark.parametrize("name", ["crc32", "adpcm", "iir"])
    def test_registered(self, name):
        from repro.workloads.suite import make_workload

        kwargs = {
            "crc32": {"message_bytes": 64},
            "adpcm": {"sample_count": 64},
            "iir": {"signal_length": 32},
        }[name]
        run = make_workload(name, **kwargs).record()
        assert len(run.trace) > 0

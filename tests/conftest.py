"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cache.geometry import CacheGeometry
from repro.mem.layout import MemoryMap


@pytest.fixture
def small_geometry() -> CacheGeometry:
    """A 2 KB, 4-column cache (the Figure 4 configuration)."""
    return CacheGeometry(line_size=16, sets=32, columns=4)


@pytest.fixture
def tiny_geometry() -> CacheGeometry:
    """A tiny cache for exhaustive checks: 4 sets x 2 columns x 16 B."""
    return CacheGeometry(line_size=16, sets=4, columns=2)


@pytest.fixture
def memory_map() -> MemoryMap:
    """A page-aligned memory map like the workloads use."""
    return MemoryMap(base=0x10000, page_size=64, page_aligned=True)

"""Shared fixtures and Hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.cache.geometry import CacheGeometry
from repro.mem.layout import MemoryMap

# Bounded-examples profiles: "tier1" (default) keeps the property
# suites fast enough for the tier-1 gate; "thorough" is for local deep
# runs and scheduled CI (HYPOTHESIS_PROFILE=thorough).  Suites that
# pin their own ``max_examples`` via @settings keep it — profiles only
# set the default.
settings.register_profile("tier1", max_examples=25, deadline=None)
settings.register_profile("thorough", max_examples=400, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "tier1"))


@pytest.fixture
def small_geometry() -> CacheGeometry:
    """A 2 KB, 4-column cache (the Figure 4 configuration)."""
    return CacheGeometry(line_size=16, sets=32, columns=4)


@pytest.fixture
def tiny_geometry() -> CacheGeometry:
    """A tiny cache for exhaustive checks: 4 sets x 2 columns x 16 B."""
    return CacheGeometry(line_size=16, sets=4, columns=2)


@pytest.fixture
def memory_map() -> MemoryMap:
    """A page-aligned memory map like the workloads use."""
    return MemoryMap(base=0x10000, page_size=64, page_aligned=True)

"""Tests for per-phase dynamic layout (paper Section 3.2)."""

from repro.layout.algorithm import LayoutConfig
from repro.layout.dynamic import DynamicLayoutPlanner
from repro.workloads.base import Workload
from repro.workloads.mpeg import MPEGDecodeApp


class _DisjointPhases(Workload):
    """Two procedures with disjoint variable sets.

    The paper: "if procedures have disjoint sets of variables, there is
    no need for re-assignment".
    """

    def __init__(self, **kwargs):
        super().__init__(name="disjoint", **kwargs)
        self.first = self.array("first", 64)
        self.second = self.array("second", 64)
        self.third = self.array("third", 64)
        self.fourth = self.array("fourth", 64)

    def run(self) -> None:
        self.begin_phase("proc1")
        for index in range(64):
            _ = self.first[index]
            _ = self.second[index]
        self.end_phase()
        self.begin_phase("proc2")
        for index in range(64):
            _ = self.third[index]
            _ = self.fourth[index]
        self.end_phase()


class _SharedShift(Workload):
    """Two procedures sharing variables with *changed* access patterns.

    Phase 1 interleaves (a, b); phase 2 interleaves (a, c) while b is
    idle — remapping becomes worthwhile when columns are scarce.
    """

    def __init__(self, **kwargs):
        super().__init__(name="shift", **kwargs)
        self.a = self.array("a", 128)
        self.b = self.array("b", 128)
        self.c = self.array("c", 128)

    def run(self) -> None:
        self.begin_phase("proc1")
        for index in range(128):
            _ = self.a[index]
            self.b[index] = index
        self.end_phase()
        self.begin_phase("proc2")
        for index in range(128):
            _ = self.a[index]
            self.c[index] = index
        self.end_phase()


def config(columns=2):
    return LayoutConfig(columns=columns, column_bytes=512)


class TestDynamicPlanner:
    def test_first_phase_always_installs(self):
        run = _DisjointPhases().record()
        plan = DynamicLayoutPlanner(config(4)).plan(run)
        assert plan.phases[0].remapped

    def test_disjoint_phases_reuse_when_feasible(self):
        """With enough columns the phase-1 assignment covers phase 2's
        variables too... but phase 2's variables were never placed by
        phase 1's planner, so a remap is required.  With a *whole
        program* static plan, no remap would occur — checked via the
        static planner giving zero-cost coverage."""
        run = _DisjointPhases().record()
        plan = DynamicLayoutPlanner(config(4)).plan(run)
        # proc2 touches variables proc1's assignment never placed.
        assert plan.phases[1].remapped

    def test_shared_shift_remaps_when_columns_scarce(self):
        run = _SharedShift().record()
        plan = DynamicLayoutPlanner(config(2)).plan(run)
        assert plan.phases[1].remapped
        # The fresh phase-2 plan separates a and c.
        assignment = plan.phases[1].assignment
        assert not assignment.mask_for("a").overlaps(
            assignment.mask_for("c")
        )

    def test_reuse_when_previous_covers_phase(self):
        """If phase 2 only touches variables phase 1 already separated,
        the planner keeps the old mapping."""

        class Subset(Workload):
            def __init__(self, **kwargs):
                super().__init__(name="subset", **kwargs)
                self.a = self.array("a", 64)
                self.b = self.array("b", 64)

            def run(self) -> None:
                self.begin_phase("both")
                for index in range(64):
                    _ = self.a[index]
                    _ = self.b[index]
                self.end_phase()
                self.begin_phase("only_a")
                for index in range(64):
                    _ = self.a[index]
                self.end_phase()

        run = Subset().record()
        plan = DynamicLayoutPlanner(config(2)).plan(run)
        assert not plan.phases[1].remapped
        assert plan.remap_count == 1

    def test_mpeg_app_plans_all_phases(self):
        run = MPEGDecodeApp(blocks=2, frames=1).record()
        plan = DynamicLayoutPlanner(
            LayoutConfig(columns=4, column_bytes=512, split_oversized=False)
        ).plan(run)
        assert [phase.label for phase in plan.phases] == [
            "dequant", "idct", "plus",
        ]
        assert plan.assignment_for("idct") is plan.phases[1].assignment

    def test_assignment_for_unknown_label(self):
        run = _DisjointPhases().record()
        plan = DynamicLayoutPlanner(config(4)).plan(run)
        import pytest

        with pytest.raises(KeyError):
            plan.assignment_for("nope")

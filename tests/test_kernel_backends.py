"""Kernel-backend registry, set-sharded merging, chunk boundaries.

Three concerns, one file:

* the ``REPRO_KERNEL`` registry: ``auto`` falls back to numpy with
  exactly one warning, an explicit ``compiled`` fails loudly when no
  compiler is usable, and the active backend is folded into
  ``SimJob.content_hash`` so result-cache entries never cross-hit
  between backends;
* sharding one sweep point by cache-set index: merged tallies must be
  bit-identical to the unsharded run for *any* shard count (including
  the degenerate brackets around the set count) and *any* chunk
  boundary alignment, on both kernels and across process fan-out;
* chunk-streamed replay: ``iter_chunks`` windows through a stateful
  :class:`~repro.sim.engine.batched.LockstepCache` — including chunks
  far smaller than a scheduling round and warm-prefix splits — pinned
  against exact counts so a silent accounting change cannot land.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.sim.engine import _compiled, backends
from repro.sim.engine.batched import (
    LockstepCache,
    LockstepState,
    batched_simulate,
    lockstep_run,
)
from repro.sim.engine.sharded import (
    simulate_columnar_sharded,
    simulate_npz_sharded,
)
from repro.sim.engine.spec import SimJob
from repro.trace.columnar import ColumnarTrace

from strategies import sharded_replay_cases

requires_compiled = pytest.mark.skipif(
    not backends.compiled_available(),
    reason="compiled lockstep kernel unavailable (no usable C compiler)",
)

KERNELS = ["numpy"]
if backends.compiled_available():
    KERNELS.append("compiled")


@pytest.fixture
def clean_registry(monkeypatch):
    """A fresh registry with no REPRO_KERNEL override (registry tests
    request this explicitly; the Hypothesis properties pass backends
    by name and never touch the process-wide selection)."""
    monkeypatch.delenv(backends.KERNEL_ENV, raising=False)
    backends.reset_backend()
    yield
    backends.reset_backend()


def _force_unavailable(monkeypatch, reason="no C compiler (test)"):
    monkeypatch.setattr(_compiled, "available", lambda: False)
    monkeypatch.setattr(_compiled, "unavailable_reason", lambda: reason)


def _force_available(monkeypatch):
    monkeypatch.setattr(_compiled, "available", lambda: True)
    monkeypatch.setattr(_compiled, "unavailable_reason", lambda: None)


# ----------------------------------------------------------------------
# Registry: resolution, fallback, loud failure
# ----------------------------------------------------------------------
def test_numpy_always_resolves(clean_registry):
    assert backends.resolve_backend("numpy") == "numpy"


def test_unknown_backend_errors(clean_registry):
    with pytest.raises(backends.KernelBackendError, match="unknown"):
        backends.resolve_backend("fortran")


def test_auto_prefers_compiled_when_available(clean_registry, monkeypatch):
    _force_available(monkeypatch)
    assert backends.resolve_backend("auto") == "compiled"


def test_auto_falls_back_with_exactly_one_warning(clean_registry, monkeypatch):
    _force_unavailable(monkeypatch)
    with pytest.warns(RuntimeWarning, match="numpy"):
        assert backends.resolve_backend("auto") == "numpy"
    # The second resolution is silent: one warning per process.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert backends.resolve_backend("auto") == "numpy"


def test_explicit_compiled_errors_loudly_when_unavailable(
    clean_registry, monkeypatch
):
    _force_unavailable(monkeypatch, reason="cc exploded")
    with pytest.raises(backends.KernelBackendError, match="cc exploded"):
        backends.resolve_backend("compiled")
    # The same loud failure through the environment default.
    monkeypatch.setenv(backends.KERNEL_ENV, "compiled")
    with pytest.raises(backends.KernelBackendError):
        backends.active_backend()


def test_env_override_pins_numpy(clean_registry, monkeypatch):
    monkeypatch.setenv(backends.KERNEL_ENV, "numpy")
    assert backends.active_backend() == "numpy"


def test_set_backend_overrides_and_failed_set_keeps_previous(
    clean_registry, monkeypatch
):
    assert backends.set_backend("numpy") == "numpy"
    assert backends.active_backend() == "numpy"
    _force_unavailable(monkeypatch)
    with pytest.raises(backends.KernelBackendError):
        backends.set_backend("compiled")
    assert backends.active_backend() == "numpy"


def test_ways_beyond_compiled_limit_run_numpy(monkeypatch):
    """Geometries past the C kernel's way limit silently use numpy."""
    assert not _compiled.supports(_compiled.MAX_COMPILED_WAYS + 1)
    rows = np.zeros(4, dtype=np.int64)
    tags = np.arange(4, dtype=np.int64)
    state = LockstepState.cold(1, _compiled.MAX_COMPILED_WAYS + 1)
    hits, bypasses = lockstep_run(rows, tags, state, backend="compiled")
    assert not hits.any() and not bypasses.any()


# ----------------------------------------------------------------------
# ResultCache identity: backends never cross-hit
# ----------------------------------------------------------------------
def test_content_hash_differs_between_backends(clean_registry, monkeypatch):
    """The cache-key regression: one job, two backends, two digests."""
    _force_available(monkeypatch)
    job = SimJob(
        runner="repro.experiments.runners:trace_sim",
        params={"kind": "zipf", "count": 1000},
    )
    backends.set_backend("numpy")
    numpy_digest = job.content_hash()
    assert job.content_hash() == numpy_digest  # stable within a backend
    backends.set_backend("compiled")
    compiled_digest = job.content_hash()
    assert numpy_digest != compiled_digest


# ----------------------------------------------------------------------
# Set-sharded single-point merging
# ----------------------------------------------------------------------
def _reference_result(trace, geometry, uniform_mask=None):
    cache = LockstepCache(geometry, backend="numpy")
    cache.run(
        trace.blocks_for(geometry.offset_bits), uniform_mask=uniform_mask
    )
    return cache.result()


@given(case=sharded_replay_cases(), kernel=st.sampled_from(KERNELS))
def test_sharded_merge_matches_unsharded(case, kernel):
    """Property: any (shards, chunk, kernel) merges bit-identically."""
    geometry, trace, shards, chunk = case
    expected = _reference_result(trace, geometry)
    sharded = simulate_columnar_sharded(
        trace,
        geometry,
        shards=shards,
        chunk_accesses=chunk,
        kernel=kernel,
    )
    assert sharded == expected


def _fixed_trace(geometry, length=1001, seed=42):
    rng = np.random.default_rng(seed)
    addresses = (
        rng.integers(0, geometry.total_lines * 3, length).astype(np.int64)
        * geometry.line_size
    )
    return ColumnarTrace.from_columns(addresses, name="pinned")


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("shards", [1, 7, 8, 11])
@pytest.mark.parametrize("chunk", [1, 1000, 1001, 1002])
def test_sharded_brackets_around_sets_and_length(kernel, shards, chunk):
    """Shard counts bracketing n_sets=8, chunks bracketing the trace."""
    geometry = CacheGeometry(line_size=16, sets=8, columns=4)
    trace = _fixed_trace(geometry)
    expected = _reference_result(trace, geometry, uniform_mask=0b0110)
    sharded = simulate_columnar_sharded(
        trace,
        geometry,
        shards=shards,
        chunk_accesses=chunk,
        uniform_mask=0b0110,
        kernel=kernel,
    )
    assert sharded == expected


@pytest.mark.parametrize("workers", [1, 2])
def test_npz_sharded_process_fanout_matches(tmp_path, workers):
    """Worker processes streaming shards off one archive still merge
    to the unsharded counts."""
    geometry = CacheGeometry(line_size=16, sets=16, columns=4)
    trace = _fixed_trace(geometry, length=4096, seed=7)
    path = tmp_path / "trace.npz"
    trace.save_npz(path)
    expected = _reference_result(trace, geometry)
    result = simulate_npz_sharded(
        path,
        geometry,
        shards=4,
        workers=workers,
        chunk_accesses=513,
        kernel="numpy",
    )
    assert result == expected


# ----------------------------------------------------------------------
# Chunk-streamed replay: pinned counts (audit of iter_chunks + warm-up)
# ----------------------------------------------------------------------
#: Exact counts of the seed-42 pinned trace through an 8x4 cache with
#: mask 0b0110.  The audit behind this pin found *no* duplicate
#: warm-up accounting for chunks smaller than a scheduling round —
#: these constants keep it that way.
_PINNED = {"accesses": 1001, "hits": 173, "misses": 828, "bypasses": 0}


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("chunk", [1, 2, 7, 1000, 1001, 1002])
def test_chunk_streamed_replay_pinned(kernel, chunk):
    """Streaming any chunk size reproduces the pinned exact counts."""
    geometry = CacheGeometry(line_size=16, sets=8, columns=4)
    trace = _fixed_trace(geometry)
    cache = LockstepCache(geometry, backend=kernel)
    for window in trace.iter_chunks(chunk):
        cache.run(
            window.blocks_for(geometry.offset_bits), uniform_mask=0b0110
        )
    result = cache.result()
    assert result.accesses == _PINNED["accesses"]
    assert result.hits == _PINNED["hits"]
    assert result.misses == _PINNED["misses"]
    assert result.bypasses == _PINNED["bypasses"]


@pytest.mark.parametrize("kernel", KERNELS)
def test_warm_prefix_then_chunked_tail_pinned(kernel):
    """A warm prefix followed by a tiny-chunk tail changes nothing."""
    geometry = CacheGeometry(line_size=16, sets=8, columns=4)
    trace = _fixed_trace(geometry)
    cache = LockstepCache(geometry, backend=kernel)
    cache.run(
        trace.slice(0, 137).blocks_for(geometry.offset_bits),
        uniform_mask=0b0110,
    )
    for window in trace.slice(137, len(trace)).iter_chunks(5):
        cache.run(
            window.blocks_for(geometry.offset_bits), uniform_mask=0b0110
        )
    result = cache.result()
    assert result.hits == _PINNED["hits"]
    assert result.misses == _PINNED["misses"]


@requires_compiled
@given(case=sharded_replay_cases())
def test_one_shot_compiled_equals_numpy_on_sharded_cases(case):
    """Cross-check: the same drawn traces one-shot on both kernels."""
    geometry, trace, _shards, _chunk = case
    blocks = trace.blocks_for(geometry.offset_bits)
    numpy_result = batched_simulate(blocks, geometry, backend="numpy")
    compiled_result = batched_simulate(blocks, geometry, backend="compiled")
    assert compiled_result == numpy_result

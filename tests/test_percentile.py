"""Unit tests for nearest-rank percentile (the BENCH p99 fix).

The old implementation indexed with ``int(fraction * n)`` — one rank
too high — so ``percentile([1, 2, 3, 4], 0.5)`` returned 3.0 and p99
of 100 samples returned the max.  These tests pin the true
nearest-rank definition: the sample at 1-based rank
``ceil(fraction * n)``, with fraction 0 selecting the first sample.
"""

import pytest

from repro.fleet.service.telemetry import LatencyRecorder, percentile


def test_p50_even_count_is_lower_middle():
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0


def test_p50_odd_count_is_middle():
    assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0


def test_p50_singleton():
    assert percentile([7.5], 0.5) == 7.5


def test_p99_singleton():
    assert percentile([7.5], 0.99) == 7.5


def test_empty_returns_zero():
    assert percentile([], 0.5) == 0.0
    assert percentile([], 0.99) == 0.0


def test_p99_of_100_samples_is_rank_99_not_max():
    samples = [float(value) for value in range(1, 101)]
    assert percentile(samples, 0.99) == 99.0
    assert percentile(samples, 1.0) == 100.0


def test_p99_even_and_odd_sets():
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.99) == 4.0
    assert percentile([1.0, 2.0, 3.0], 0.99) == 3.0


def test_fraction_zero_is_first_sample():
    assert percentile([4.0, 2.0, 9.0], 0.0) == 2.0


def test_unsorted_input_is_sorted_first():
    assert percentile([9.0, 1.0, 5.0, 3.0], 0.5) == 3.0


def test_fraction_out_of_range_raises():
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)
    with pytest.raises(ValueError):
        percentile([1.0], -0.1)


def test_latency_recorder_uses_nearest_rank():
    recorder = LatencyRecorder()
    for value in [1.0, 2.0, 3.0, 4.0]:
        recorder.record(value)
    assert recorder.p50() == 2.0
    assert recorder.p99() == 4.0
    assert recorder.as_dict()["p50_s"] == 2.0

"""The fleet service: shard parity, migration, and the async daemon.

The load-bearing guarantee is that :class:`ShardServer` is the
offline :class:`FleetExecutor` turned inside out, *not* a second
scheduler: driving the same population through both must produce
identical per-tenant telemetry.  On top of that sit the live-only
behaviours — extract/inject migration, admission queueing with
patience timeouts, and the disjoint-column audit — exercised here
through the real asyncio daemon.
"""

import asyncio
import dataclasses

import pytest

from repro.cache.geometry import CacheGeometry
from repro.fleet import (
    FleetConfig,
    FleetEvent,
    FleetExecutor,
    FleetTrace,
    TenantSpec,
    TenantStatus,
)
from repro.fleet.service import FleetService, ServiceConfig, ShardServer
from repro.sim.config import MULTITASK_TIMING
from repro.workloads.suite import make_workload

TIMING = MULTITASK_TIMING

CONFIG = FleetConfig(quantum_instructions=128, window_instructions=2048)


def spec_for(index, workload, priority=1, **kwargs):
    run = make_workload(workload, seed=10 + index, **kwargs).record()
    return TenantSpec(
        name=f"{workload}-{index}",
        run=run,
        priority=priority,
        address_offset=index << 32,
    )


@pytest.fixture(scope="module")
def trio():
    return [
        spec_for(0, "crc32", message_bytes=256),
        spec_for(1, "histogram", sample_count=256, bin_count=32),
        spec_for(2, "fir", signal_length=256, tap_count=16),
    ]


@pytest.fixture
def geometry():
    return CacheGeometry(line_size=16, sets=32, columns=8)


def telemetry_view(telemetry):
    return {
        "instructions": telemetry.instructions,
        "accesses": telemetry.accesses,
        "hits": telemetry.hits,
        "misses": telemetry.misses,
        "quanta": telemetry.quanta,
        "wraps": telemetry.wraps,
        "remaps": telemetry.remaps,
    }


class TestShardExecutorParity:
    def test_identical_telemetry_on_same_population(
        self, geometry, trio
    ):
        """Same tenants, same horizon -> identical per-tenant counts."""
        horizon = 20_000
        fleet = FleetTrace(
            events=tuple(
                FleetEvent(time=0, kind="arrival", spec=spec)
                for spec in trio
            ),
            horizon_instructions=horizon,
        )
        offline = FleetExecutor(geometry, TIMING, CONFIG).run(fleet)

        shard = ShardServer(0, geometry, TIMING, CONFIG)
        for spec in trio:
            assert shard.admit(spec)
        segments = 0
        while shard.now < horizon:
            # The offline loop truncates its final segment at the
            # horizon; hand the same budget to the shard.
            budget = min(
                CONFIG.window_instructions, horizon - shard.now
            )
            assert shard.advance(budget) > 0
            segments += 1

        for spec in trio:
            assert telemetry_view(
                shard.runtimes[spec.name].telemetry
            ) == telemetry_view(offline.telemetry[spec.name]), spec.name
        assert shard.segments == segments

    def test_advance_moves_the_virtual_clock(self, geometry, trio):
        shard = ShardServer(0, geometry, TIMING, CONFIG)
        shard.admit(trio[0])
        executed = shard.advance()
        assert executed > 0
        assert shard.now == executed

    def test_idle_shard_still_burns_budget(self, geometry):
        """An empty shard advances its clock (lockstep with peers)."""
        shard = ShardServer(0, geometry, TIMING, CONFIG)
        assert shard.advance(1024) == 0
        assert shard.now == 1024


class TestAdmissionControl:
    def test_overflow_admission_rejected(self, geometry):
        """More tenants than columns -> admit returns False."""
        shard = ShardServer(0, geometry, TIMING, CONFIG)
        admitted = 0
        rejected = None
        for index in range(geometry.columns + 1):
            spec = spec_for(index, "crc32", message_bytes=256)
            if shard.admit(spec):
                admitted += 1
            else:
                rejected = spec.name
                break
        assert admitted == geometry.columns
        assert rejected is not None
        assert (
            shard.runtimes[rejected].telemetry.status
            is TenantStatus.REJECTED
        )
        assert shard.rejected_count == 1

    def test_service_budget_auto_departs(self, geometry, trio):
        shard = ShardServer(0, geometry, TIMING, CONFIG)
        shard.admit(trio[0], service_instructions=1024)
        while trio[0].name in shard.residents:
            shard.advance()
        assert shard.departed_count == 1
        telemetry = shard.runtimes[trio[0].name].telemetry
        assert telemetry.status is TenantStatus.DEPARTED
        assert telemetry.instructions >= 1024


class TestMigration:
    def test_extract_inject_moves_run_state(self, geometry, trio):
        source = ShardServer(0, geometry, TIMING, CONFIG)
        target = ShardServer(1, geometry, TIMING, CONFIG)
        for spec in trio:
            source.admit(spec, service_instructions=50_000)
        source.advance()
        migrant_name = trio[1].name
        before = source.runtimes[migrant_name].telemetry.instructions
        assert before > 0

        migrant = source.extract(migrant_name)
        assert migrant_name not in source.residents
        assert source.migrations_out == 1
        assert migrant.service_remaining is not None
        assert migrant.service_remaining < 50_000

        assert target.inject(migrant)
        assert migrant_name in target.residents
        assert target.migrations_in == 1
        source.broker.check_disjoint()
        target.broker.check_disjoint()

        target.advance()
        after = target.runtimes[migrant_name].telemetry.instructions
        assert after > before  # resumed, not restarted

    def test_inject_charges_a_remap(self, geometry, trio):
        source = ShardServer(0, geometry, TIMING, CONFIG)
        target = ShardServer(1, geometry, TIMING, CONFIG)
        source.admit(trio[0])
        source.advance()
        remaps_before = source.runtimes[
            trio[0].name
        ].telemetry.remaps
        migrant = source.extract(trio[0].name)
        assert target.inject(migrant)
        # At least the migration's own tint rewrite (the broker's
        # admission rebalance may add more).
        assert (
            target.runtimes[trio[0].name].telemetry.remaps
            > remaps_before
        )
        target.advance()
        assert (
            target.runtimes[trio[0].name].telemetry.samples[-1]
            .remap_cycles
            > 0
        )

    def test_inject_into_full_shard_fails_cleanly(
        self, geometry, trio
    ):
        source = ShardServer(0, geometry, TIMING, CONFIG)
        target = ShardServer(1, geometry, TIMING, CONFIG)
        source.admit(trio[0])
        for index in range(3, 3 + geometry.columns):
            target.admit(spec_for(index, "crc32", message_bytes=256))
        migrant = source.extract(trio[0].name)
        assert not target.inject(migrant)
        assert trio[0].name not in target.residents
        target.broker.check_disjoint()


def small_service_config(**overrides):
    base = ServiceConfig(
        shards=2,
        geometry=CacheGeometry(line_size=16, sets=32, columns=8),
        timing=TIMING,
        fleet=FleetConfig(
            quantum_instructions=128,
            window_instructions=1024,
            hysteresis_windows=8,
            min_detect_accesses=256,
        ),
        patience_instructions=8_192,
        monitor_interval_instructions=2_048,
    )
    return dataclasses.replace(base, **overrides)


class TestDaemon:
    def test_submit_serve_drain(self, trio):
        async def scenario():
            async with FleetService(small_service_config()) as service:
                tickets = await asyncio.gather(
                    *(
                        service.submit(spec, service_instructions=4096)
                        for spec in trio
                    )
                )
                await service.drain()
                return tickets, service.snapshot(), service

        tickets, snapshot, service = asyncio.run(scenario())
        assert all(ticket.admitted for ticket in tickets)
        assert {ticket.reason for ticket in tickets} == {"admitted"}
        for ticket in tickets:
            assert 0 <= ticket.shard < 2
            assert ticket.wall_latency_s >= 0.0
            assert ticket.queue_wait_instructions >= 0
        # Drained: everyone served their budget and departed.
        assert all(
            not shard.residents for shard in snapshot.shards
        )
        assert service.invariant_checks > 0
        assert service.invariant_violations == 0

    def test_patience_timeout_rejects(self):
        """Saturate one shard; the overflow times out, not hangs."""
        config = small_service_config(
            shards=1, patience_instructions=2_048
        )
        specs = [
            spec_for(index, "crc32", message_bytes=256)
            for index in range(12)
        ]

        async def scenario():
            async with FleetService(config) as service:
                tickets = await asyncio.gather(
                    *(
                        service.submit(
                            spec, service_instructions=500_000
                        )
                        for spec in specs
                    )
                )
                return tickets

        tickets = asyncio.run(scenario())
        reasons = {ticket.reason for ticket in tickets}
        admitted = [t for t in tickets if t.admitted]
        timed_out = [t for t in tickets if t.reason == "timeout"]
        assert admitted and timed_out, reasons
        for ticket in timed_out:
            assert ticket.queue_wait_instructions >= 2_048

    def test_shutdown_rejects_queued_requests(self, trio):
        config = small_service_config(shards=1)

        async def scenario():
            service = FleetService(config)
            await service.start()
            ticket = await service.submit(
                trio[0], service_instructions=1_000_000
            )
            # Queue one more than fits, then stop before it decides.
            fillers = [
                asyncio.create_task(
                    service.submit(
                        spec_for(
                            20 + index, "crc32", message_bytes=256
                        ),
                        service_instructions=1_000_000,
                    )
                )
                for index in range(10)
            ]
            await asyncio.sleep(0.05)
            await service.stop()
            filled = await asyncio.gather(*fillers)
            return ticket, filled

        ticket, filled = asyncio.run(scenario())
        assert ticket.admitted
        assert any(t.reason == "shutdown" for t in filled) or all(
            t.reason in {"admitted", "timeout"} for t in filled
        )

    def test_explicit_departure_frees_columns(self, trio):
        config = small_service_config(shards=1)

        async def scenario():
            async with FleetService(config) as service:
                ticket = await service.submit(
                    trio[0], service_instructions=1_000_000
                )
                shard = service.shards[ticket.shard]
                resident_before = trio[0].name in shard.residents
                await service.depart(trio[0].name)
                await service.drain()  # departure is queued work
                return resident_before, trio[0].name in shard.residents

        resident_before, resident_after = asyncio.run(scenario())
        assert resident_before and not resident_after

"""The differential-testing oracle: every backend, one machine.

Random traces and geometries drive the reference
:class:`~repro.cache.column_cache.ColumnCache`, the scalar
:class:`~repro.cache.fastsim.FastColumnCache`, the numpy lockstep
kernel, the on-demand-compiled C kernel (skip-marked when no system
compiler is usable) and the set-sharded runners; the *per-access* hit
and bypass streams (not just totals) must be bit-identical.  The adaptive runtime joins the
triangle at the system level: the fast windowed executor and a live
remap replay through the full TLB/tint/replacement mechanism must
agree hit-for-hit and cycle-for-cycle.

The input strategies live in ``tests/strategies.py`` so a new backend
can reuse them verbatim — see ``docs/testing.md`` for the recipe.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.column_cache import ColumnCache
from repro.cache.fastsim import FastColumnCache, blocks_of
from repro.cache.geometry import CacheGeometry
from repro.fleet import (
    ColumnBroker,
    FleetConfig,
    FleetEvent,
    FleetExecutor,
    FleetTrace,
    TenantSpec,
)
from repro.layout.algorithm import LayoutConfig
from repro.runtime import AdaptiveConfig, AdaptiveExecutor, replay_reference
from repro.sim.config import TimingConfig
from repro.sim.engine.backends import (
    compiled_available,
    reset_backend,
    set_backend,
)
from repro.sim.engine.batched import (
    LockstepCache,
    LockstepState,
    batched_simulate,
    lockstep_run,
)
from repro.sim.engine.sharded import (
    simulate_columnar_sharded,
    simulate_trace_sharded,
)

from repro.utils.bitvector import ColumnMask

from strategies import (
    block_trace_cases,
    fleet_scenario,
    phased_workload,
    record_suite_case,
    suite_cases,
    suite_mask_bits,
    suite_variable_masks,
)

TIMING = TimingConfig(miss_penalty=13, uncached_penalty=29)

#: The compiled C kernel needs a working system compiler; when there is
#: none the rest of the oracle still runs and these legs skip cleanly.
requires_compiled = pytest.mark.skipif(
    not compiled_available(),
    reason="compiled lockstep kernel unavailable (no usable C compiler)",
)


def reference_streams(geometry, blocks, mask_bits):
    """Per-access (hit, bypass) streams from the reference model."""
    cache = ColumnCache(geometry, policy="lru")
    hits = np.zeros(len(blocks), dtype=bool)
    bypasses = np.zeros(len(blocks), dtype=bool)
    for position, (block, bits) in enumerate(zip(blocks, mask_bits)):
        result = cache.access(
            block << geometry.offset_bits,
            mask=ColumnMask(bits, geometry.columns),
        )
        hits[position] = result.hit
        bypasses[position] = result.bypassed
    return hits, bypasses, cache


@given(case=block_trace_cases())
def test_backends_agree_per_access(case):
    """Reference, scalar, and lockstep: identical access streams."""
    geometry, blocks, mask_bits = case
    ref_hits, ref_bypasses, reference = reference_streams(
        geometry, blocks, mask_bits
    )

    fast = FastColumnCache(geometry)
    fast_hits = fast.run_with_flags(blocks, mask_bits=mask_bits)
    # A bypass is a miss whose mask allows no fill; the scalar model
    # counts them, and per access they are determined by (hit, mask).
    fast_bypasses = ~fast_hits & (np.asarray(mask_bits) == 0)

    lockstep, lock_hits, lock_bypasses = batched_simulate(
        blocks, geometry, mask_bits=mask_bits, return_flags=True
    )

    assert np.array_equal(fast_hits, ref_hits)
    assert np.array_equal(lock_hits, ref_hits)
    assert np.array_equal(fast_bypasses, ref_bypasses)
    assert np.array_equal(lock_bypasses, ref_bypasses)

    # Aggregate stats line up with the streams on every backend.
    expected_hits = int(ref_hits.sum())
    expected_bypasses = int(ref_bypasses.sum())
    assert fast.hits == expected_hits
    assert fast.misses == len(blocks) - expected_hits
    assert fast.bypasses == expected_bypasses
    assert lockstep.hits == expected_hits
    assert lockstep.misses == len(blocks) - expected_hits
    assert lockstep.bypasses == expected_bypasses
    assert reference.stats.hits == expected_hits
    assert reference.stats.misses == len(blocks) - expected_hits
    assert reference.stats.bypasses == expected_bypasses


@requires_compiled
@given(case=block_trace_cases())
def test_compiled_kernel_agrees_per_access(case):
    """The compiled C kernel joins the matrix: streams, state, misses.

    Per-access hit/bypass flags, the final cache state arrays, and
    the ``collect="misses"`` position set must all be bit-identical
    to the numpy lockstep kernel (itself anchored to the reference
    model above) on every drawn trace.
    """
    geometry, blocks, mask_bits = case
    blocks = np.asarray(blocks, dtype=np.int64)
    masks = np.asarray(mask_bits, dtype=np.int64)
    rows = blocks & (geometry.sets - 1)
    tags = blocks >> geometry.index_bits

    state_numpy = LockstepState.cold(geometry.sets, geometry.columns)
    numpy_hits, numpy_bypasses = lockstep_run(
        rows, tags, state_numpy, mask_bits=masks, backend="numpy"
    )
    state_compiled = LockstepState.cold(geometry.sets, geometry.columns)
    compiled_hits, compiled_bypasses = lockstep_run(
        rows, tags, state_compiled, mask_bits=masks, backend="compiled"
    )
    assert np.array_equal(compiled_hits, numpy_hits)
    assert np.array_equal(compiled_bypasses, numpy_bypasses)
    assert np.array_equal(state_compiled.tags, state_numpy.tags)
    assert np.array_equal(state_compiled.last_use, state_numpy.last_use)
    assert np.array_equal(state_compiled.clock, state_numpy.clock)

    state_misses = LockstepState.cold(geometry.sets, geometry.columns)
    miss_positions = lockstep_run(
        rows,
        tags,
        state_misses,
        mask_bits=masks,
        collect="misses",
        backend="compiled",
    )
    miss_flags = np.zeros(len(blocks), dtype=bool)
    miss_flags[np.asarray(miss_positions, dtype=np.int64)] = True
    assert np.array_equal(miss_flags, ~numpy_hits)


@given(case=block_trace_cases(), shards=st.integers(1, 3))
def test_sharded_totals_match_reference(case, shards):
    """The set-sharded runner reports the same totals."""
    geometry, blocks, mask_bits = case
    ref_hits, ref_bypasses, _ = reference_streams(
        geometry, blocks, mask_bits
    )
    sharded = simulate_trace_sharded(
        np.asarray(blocks, dtype=np.int64),
        geometry,
        mask_bits=np.asarray(mask_bits, dtype=np.int64),
        workers=1,
        shards=shards,
    )
    assert sharded.hits == int(ref_hits.sum())
    assert sharded.misses == len(blocks) - int(ref_hits.sum())
    assert sharded.bypasses == int(ref_bypasses.sum())


@given(case=block_trace_cases())
def test_resumed_scalar_equals_one_shot(case):
    """Splitting a run across calls must not change the streams."""
    geometry, blocks, mask_bits = case
    one_shot = FastColumnCache(geometry)
    expected = one_shot.run_with_flags(blocks, mask_bits=mask_bits)
    resumed = FastColumnCache(geometry)
    cut = len(blocks) // 2
    first = resumed.run_with_flags(blocks[:cut], mask_bits=mask_bits[:cut])
    second = resumed.run_with_flags(blocks[cut:], mask_bits=mask_bits[cut:])
    assert np.array_equal(np.concatenate([first, second]), expected)
    assert resumed.result() == one_shot.result()


# ----------------------------------------------------------------------
# Whole-suite oracle: every registered workload, legacy vs columnar
# ----------------------------------------------------------------------
_SUITE_GEOMETRY = CacheGeometry(line_size=16, sets=16, columns=4)

#: ColumnCache walks accesses one Python call at a time; bounding its
#: share keeps the whole-suite oracle inside tier-1 time while the
#: vectorized backends still cover every access of every trace.
_REFERENCE_PREFIX = 4096


@pytest.mark.parametrize(
    ("name", "kwargs"),
    suite_cases(),
    ids=[name for name, _ in suite_cases()],
)
class TestWorkloadSuiteColumnar:
    """The columnar pipeline must be invisible: every workload's
    recorded trace and simulated per-access hit/bypass streams are
    bit-identical between the legacy list path and the columnar path,
    on every backend."""

    def test_legacy_and_columnar_recordings_identical(self, name, kwargs):
        columnar = record_suite_case(name, kwargs).trace
        legacy = record_suite_case(name, kwargs, legacy=True).trace
        for column in (
            "addresses", "sizes", "writes", "gaps", "variable_ids"
        ):
            assert np.array_equal(
                getattr(columnar, column), getattr(legacy, column)
            ), column
        assert columnar.variable_names == legacy.variable_names

    def test_backends_agree_on_recorded_trace(self, name, kwargs):
        geometry = _SUITE_GEOMETRY
        run = record_suite_case(name, kwargs)
        trace = run.trace
        blocks = blocks_of(trace, geometry)
        mask_bits = suite_mask_bits(trace, geometry.columns)

        # Legacy list path: the scalar cache over Python lists.
        scalar = FastColumnCache(geometry)
        scalar_hits = scalar.run_with_flags(
            blocks.tolist(), mask_bits=mask_bits.tolist()
        )
        scalar_bypasses = ~scalar_hits & (mask_bits == 0)

        # Columnar paths: one-shot lockstep, stateful LockstepCache,
        # and the counting mode the sweep engine batches through.
        lockstep, lock_hits, lock_bypasses = batched_simulate(
            blocks, geometry, mask_bits=mask_bits, return_flags=True
        )
        assert np.array_equal(lock_hits, scalar_hits)
        assert np.array_equal(lock_bypasses, scalar_bypasses)

        stateful = LockstepCache(geometry)
        stateful_hits = stateful.run_with_flags(
            blocks, mask_bits=mask_bits
        )
        assert np.array_equal(stateful_hits, scalar_hits)

        state = LockstepState.cold(geometry.sets, geometry.columns)
        miss_positions = lockstep_run(
            blocks & (geometry.sets - 1),
            blocks >> geometry.index_bits,
            state,
            mask_bits=mask_bits,
            collect="misses",
        )
        miss_flags = np.zeros(len(blocks), dtype=bool)
        miss_flags[miss_positions] = True
        assert np.array_equal(miss_flags, ~scalar_hits)

        sharded = simulate_trace_sharded(
            blocks, geometry, mask_bits=mask_bits, workers=1, shards=2
        )
        assert sharded.hits == int(scalar_hits.sum())
        assert sharded.bypasses == int(scalar_bypasses.sum())
        assert lockstep.hits == int(scalar_hits.sum())

        # The per-access reference model anchors a bounded prefix.
        prefix = slice(0, _REFERENCE_PREFIX)
        ref_hits, ref_bypasses, _ = reference_streams(
            geometry,
            blocks[prefix].tolist(),
            mask_bits[prefix].tolist(),
        )
        assert np.array_equal(ref_hits, scalar_hits[prefix])
        assert np.array_equal(ref_bypasses, scalar_bypasses[prefix])

    @requires_compiled
    def test_compiled_backend_agrees_on_recorded_trace(self, name, kwargs):
        """Compiled kernel on real workload traces: streams + shards.

        One-shot flags, the stateful :class:`LockstepCache`, and the
        chunk-streamed set-sharded single-point runner must match the
        numpy lockstep kernel access-for-access / count-for-count on
        every recorded suite workload.
        """
        geometry = _SUITE_GEOMETRY
        trace = record_suite_case(name, kwargs).trace
        blocks = blocks_of(trace, geometry)
        mask_bits = suite_mask_bits(trace, geometry.columns)

        reference, numpy_hits, numpy_bypasses = batched_simulate(
            blocks,
            geometry,
            mask_bits=mask_bits,
            return_flags=True,
            backend="numpy",
        )
        compiled, compiled_hits, compiled_bypasses = batched_simulate(
            blocks,
            geometry,
            mask_bits=mask_bits,
            return_flags=True,
            backend="compiled",
        )
        assert np.array_equal(compiled_hits, numpy_hits)
        assert np.array_equal(compiled_bypasses, numpy_bypasses)
        assert compiled == reference

        stateful = LockstepCache(geometry, backend="compiled")
        stateful_hits = stateful.run_with_flags(
            blocks, mask_bits=mask_bits
        )
        assert np.array_equal(stateful_hits, numpy_hits)

        # The sharded single-point runner streams chunk windows and
        # derives masks from variable labels; merged tallies must
        # equal the one-shot run under both kernels.
        variable_masks = suite_variable_masks(trace, geometry.columns)
        for kernel in ("numpy", "compiled"):
            sharded = simulate_columnar_sharded(
                trace,
                geometry,
                shards=3,
                chunk_accesses=777,
                variable_masks=variable_masks,
                kernel=kernel,
            )
            assert sharded.hits == reference.hits, kernel
            assert sharded.misses == reference.misses, kernel
            assert sharded.bypasses == reference.bypasses, kernel

    def test_fleet_backends_agree_on_workload(self, name, kwargs):
        geometry = CacheGeometry(line_size=16, sets=8, columns=4)
        run = record_suite_case(name, kwargs)
        spec = TenantSpec(
            name=name, run=run, priority=1, address_offset=0
        )
        fleet = FleetTrace(
            events=(FleetEvent(time=0, kind="arrival", spec=spec),),
            horizon_instructions=4_000,
        )
        config = FleetConfig(
            quantum_instructions=64, window_instructions=512
        )
        executor = FleetExecutor(geometry, TIMING, config)
        fast = executor.run(fleet, backend="lockstep", collect_flags=True)
        reference = executor.run(
            fleet, backend="reference", collect_flags=True
        )
        assert np.array_equal(fast.hit_stream, reference.hit_stream)


# ----------------------------------------------------------------------
# Fused fleet oracle: the multi-tenant kernel walk, both kernels
# ----------------------------------------------------------------------
def _run_fleet(case, backend, kernel=None, observer=None):
    """One executor run with the session kernel pinned for its span."""
    geometry, fleet, config = case
    executor = FleetExecutor(geometry, TIMING, config)
    if kernel is not None:
        set_backend(kernel)
    try:
        return executor.run(
            fleet,
            broker=ColumnBroker(geometry, TIMING),
            backend=backend,
            collect_flags=True,
            observer=observer,
        )
    finally:
        if kernel is not None:
            reset_backend()


def _assert_fleet_identical(fast, reference):
    assert np.array_equal(fast.hit_stream, reference.hit_stream)
    assert fast.total_instructions == reference.total_instructions
    assert set(fast.telemetry) == set(reference.telemetry)
    for name, telemetry in fast.telemetry.items():
        expected = reference.telemetry[name]
        assert telemetry.samples == expected.samples
        assert telemetry.status is expected.status
        assert telemetry.wraps == expected.wraps


class TestFusedFleetOracle:
    """The fused multi-tenant walk joins the differential matrix.

    Both kernel backends run whole scheduling windows in one entry
    (:func:`~repro.sim.engine.fused.fused_multitask_run`); against any
    drawn fleet scenario — mid-window arrivals and departures, broker
    rebalances, wrapping traces — the per-access hit stream and every
    per-tenant counter must be bit-identical to the scalar reference
    executor's per-quantum slice loop.
    """

    @settings(max_examples=15, deadline=None)
    @given(case=fleet_scenario())
    def test_fused_numpy_matches_reference(self, case):
        fast = _run_fleet(case, "lockstep", kernel="numpy")
        reference = _run_fleet(case, "reference")
        _assert_fleet_identical(fast, reference)

    @requires_compiled
    @settings(max_examples=15, deadline=None)
    @given(case=fleet_scenario())
    def test_fused_compiled_matches_reference(self, case):
        fast = _run_fleet(case, "lockstep", kernel="compiled")
        reference = _run_fleet(case, "reference")
        _assert_fleet_identical(fast, reference)

    @settings(max_examples=10, deadline=None)
    @given(case=fleet_scenario())
    def test_observer_attached_run_is_bit_identical(self, case):
        """The live-inspection observer is read-only on the fused
        path: attaching one changes no result, and it sees exactly
        one snapshot per scheduling segment."""
        kernels = ["numpy"]
        if compiled_available():
            kernels.append("compiled")
        plain = _run_fleet(case, "lockstep", kernel=kernels[0])
        for kernel in kernels:
            snapshots = []
            observed = _run_fleet(
                case, "lockstep", kernel=kernel,
                observer=snapshots.append,
            )
            _assert_fleet_identical(observed, plain)
            assert len(snapshots) == observed.segments
            resident_names = {
                row.name
                for snapshot in snapshots
                for row in snapshot.tenants
            }
            running = {
                name
                for name, telemetry in observed.telemetry.items()
                if telemetry.samples
            }
            assert running <= resident_names


@given(
    run=phased_workload(),
    window_size=st.sampled_from([32, 64, 128]),
    hysteresis=st.integers(1, 3),
)
@settings(deadline=None)
def test_adaptive_fast_matches_reference_mechanism(
    run, window_size, hysteresis
):
    """Live remapping: fast path == full TLB/tint mechanism.

    The adaptive executor's windowed fast path and a replay through
    ``sim/memory_system.py`` (tint rewrites + TLB flush applied
    mid-trace at the recorded remap positions) must agree on every
    count the timing model consumes.
    """
    layout = LayoutConfig(
        columns=4, column_bytes=512, line_size=16, split_oversized=True
    )
    executor = AdaptiveExecutor(
        layout,
        TIMING,
        AdaptiveConfig(
            window_accesses=window_size,
            signature_threshold=0.3,
            miss_rate_threshold=0.2,
            hysteresis_windows=hysteresis,
        ),
    )
    fast = executor.run(run)
    reference = replay_reference(run, fast, layout, TIMING)
    assert fast.result.cycles == reference.cycles
    assert fast.result.hits == reference.hits
    assert fast.result.misses == reference.misses
    assert fast.result.uncached_accesses == reference.uncached_accesses
    assert fast.result.accesses == reference.accesses
    assert fast.result.instructions == reference.instructions

"""The planner engine: vectorized profiling/graphs, backends, session.

Differential half: the vectorized :func:`profile_trace` and the
vectorized conflict-graph construction must be **bit-identical** to
the legacy per-variable / per-pair paths on every suite workload and
on Hypothesis-generated random workloads.

Engine half: every registered :class:`PlannerBackend` must emit a
structurally valid, constraint-respecting assignment; the evolutionary
backend (seeded with the paper solution) may never lose to the paper
backend on the W objective; the :class:`PlannerSession` must serve
repeated identical plans from its content-addressed cache; and the
exact-coloring node budget must degrade to greedy instead of hanging.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings

from repro.layout import (
    ColumnAssignment,
    ConflictGraph,
    DataLayoutPlanner,
    LayoutConfig,
    PlannerSession,
    available_backends,
    get_backend,
)
from repro.layout.coloring import (
    ColoringBudgetExceeded,
    color_with_k,
    exact_coloring,
    greedy_coloring,
)
from repro.layout.merge import color_with_merging
from repro.layout.partition import split_for_columns
from repro.profiling.profiler import (
    legacy_profile_trace,
    profile_trace,
)
from repro.runtime.policy import RepartitionPolicy
from repro.trace.trace import TraceBuilder
from strategies import random_workload, record_suite_case, suite_cases

COLUMN_BYTES = 512


def assert_profiles_identical(vectorized, legacy) -> None:
    """Field-by-field bit-identity of two profiles."""
    assert list(vectorized.variables) == list(legacy.variables)
    assert vectorized.total_accesses == legacy.total_accesses
    assert vectorized.total_instructions == legacy.total_instructions
    assert vectorized.unattributed == legacy.unattributed
    for name in vectorized.variables:
        fast = vectorized.variables[name]
        slow = legacy.variables[name]
        assert fast.access_count == slow.access_count
        assert fast.read_count == slow.read_count
        assert fast.write_count == slow.write_count
        assert fast.size == slow.size
        assert fast.element_size == slow.element_size
        assert fast.kind == slow.kind
        assert fast.lifetime == slow.lifetime
        assert np.array_equal(fast.positions, slow.positions)


def assert_graphs_identical(profile, names) -> None:
    """Vectorized vs forced-pairwise conflict graphs must agree."""
    fast = ConflictGraph.from_profile(profile, variables=names)
    slow = ConflictGraph.from_profile(
        profile, variables=names, weight_fn=profile.pair_weight
    )
    assert fast.edges() == slow.edges()
    assert fast.vertex_names() == slow.vertex_names()


@pytest.mark.parametrize(
    "name,kwargs", suite_cases(), ids=[n for n, _ in suite_cases()]
)
class TestSuiteDifferential:
    """Vectorized == legacy on every workload of the suite."""

    def test_profiles_bit_identical(self, name, kwargs):
        """By-address and by-label profiles match the legacy scan."""
        run = record_suite_case(name, kwargs)
        units = split_for_columns(run.memory_map.symbols, COLUMN_BYTES)
        for args in (
            (run.trace, units, True),
            (run.trace, run.memory_map.symbols, False),
            (run.trace, None, False),
        ):
            assert_profiles_identical(
                profile_trace(*args), legacy_profile_trace(*args)
            )

    def test_conflict_graph_bit_identical(self, name, kwargs):
        """Vectorized weight matrix == per-pair MIN-rule weights."""
        run = record_suite_case(name, kwargs)
        units = split_for_columns(run.memory_map.symbols, COLUMN_BYTES)
        profile = profile_trace(run.trace, units, by_address=True)
        assert_graphs_identical(profile, list(profile.variables))


@given(case=random_workload())
def test_random_workload_differential(case):
    """Hypothesis: vectorized == legacy on random maps and traces."""
    run, _, _ = case
    units = split_for_columns(run.memory_map.symbols, COLUMN_BYTES)
    for args in (
        (run.trace, units, True),
        (run.trace, None, False),
    ):
        assert_profiles_identical(
            profile_trace(*args), legacy_profile_trace(*args)
        )
    profile = profile_trace(run.trace, units, by_address=True)
    assert_graphs_identical(profile, list(profile.variables))


def test_weight_matrix_matches_pair_weight_pointwise():
    """matrix[i, j] equals pair_weight for every pair, both orders."""
    run = record_suite_case("idct", {})
    units = split_for_columns(run.memory_map.symbols, COLUMN_BYTES)
    profile = profile_trace(run.trace, units, by_address=True)
    names = list(profile.variables)
    matrix = profile.weight_matrix(names)
    assert matrix.shape == (len(names), len(names))
    assert np.array_equal(matrix, matrix.T)
    for i, first in enumerate(names):
        for j, second in enumerate(names):
            if i == j:
                assert matrix[i, j] == 0
            else:
                assert matrix[i, j] == profile.pair_weight(first, second)


# ----------------------------------------------------------------------
# Unattributed accesses
# ----------------------------------------------------------------------
class TestUnattributed:
    """profile_trace counts (and warns about) out-of-range accesses."""

    @staticmethod
    def _run_with_strays(stray_count: int, labelled: int = 4):
        from repro.mem.layout import MemoryMap

        memory_map = MemoryMap(base=0x10000, page_size=64)
        variable = memory_map.allocate_array("v", 32)
        builder = TraceBuilder()
        for index in range(labelled):
            builder.append(
                variable.address_of(index % variable.element_count),
                variable="v",
            )
        for index in range(stray_count):
            builder.append(0x900000 + index)  # outside every symbol
        return builder.build(), memory_map.symbols

    def test_unattributed_counted(self):
        """Out-of-range accesses land in Profile.unattributed."""
        trace, symbols = self._run_with_strays(3, labelled=400)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # <1%: must not warn
            profile = profile_trace(trace, symbols, by_address=True)
        assert profile.unattributed == 3
        assert profile.variables["v"].access_count == 400

    def test_unattributed_warns_above_one_percent(self):
        """More than 1% unattributed accesses raises a warning."""
        trace, symbols = self._run_with_strays(2, labelled=4)
        with pytest.warns(RuntimeWarning, match="unattributed"):
            profile = profile_trace(trace, symbols, by_address=True)
        assert profile.unattributed == 2

    def test_unlabelled_accesses_counted_by_label_mode(self):
        """Label attribution reports unlabelled accesses too."""
        builder = TraceBuilder()
        builder.append(0x100, variable="v")
        builder.append(0x200)
        profile = profile_trace(builder.build())
        assert profile.unattributed == 1


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
BACKEND_CASES = [
    ("dequant", {}),
    ("idct", {}),
    ("scan", {"buffer_bytes": 4096, "passes": 2}),
]


def plan_with(backend: str, run, columns: int = 4, **overrides):
    """Plan one run with one backend at a small geometry."""
    config = LayoutConfig(
        columns=columns,
        column_bytes=COLUMN_BYTES,
        backend=backend,
        **overrides,
    )
    return DataLayoutPlanner(config).plan(run), config


@pytest.mark.parametrize("backend", sorted(available_backends()))
@pytest.mark.parametrize(
    "name,kwargs", BACKEND_CASES, ids=[n for n, _ in BACKEND_CASES]
)
class TestBackendInvariance:
    """Every backend emits a valid, constraint-respecting assignment."""

    def test_assignment_valid(self, backend, name, kwargs):
        """check_valid() is clean and every accessed unit is placed."""
        run = record_suite_case(name, kwargs)
        assignment, config = plan_with(backend, run)
        assert isinstance(assignment, ColumnAssignment)
        assert assignment.check_valid() == []
        units = assignment.layout_symbols
        profile = profile_trace(run.trace, units, by_address=True)
        for unit_name in profile.variables:
            assert unit_name in assignment.placements
        for placement in assignment.placements.values():
            assert placement.mask.width == config.columns

    def test_respects_scratchpad_constraint(self, backend, name, kwargs):
        """Backends color only the cache columns; pins stay pinned."""
        run = record_suite_case(name, kwargs)
        assignment, config = plan_with(
            backend, run, scratchpad_columns=1
        )
        assert assignment.check_valid() == []
        for placement in assignment.placements.values():
            if placement.mask.is_empty():
                continue
            if placement.mask == config.scratchpad_mask:
                continue
            assert not placement.mask.overlaps(config.scratchpad_mask)


@pytest.mark.parametrize(
    "name,kwargs", BACKEND_CASES, ids=[n for n, _ in BACKEND_CASES]
)
def test_evolutionary_never_loses_to_paper(name, kwargs):
    """Seeded GA cost <= paper cost on the same conflict graph."""
    run = record_suite_case(name, kwargs)
    paper, _ = plan_with("paper", run, columns=2)
    evolved, _ = plan_with("evolutionary", run, columns=2)
    assert evolved.predicted_cost <= paper.predicted_cost


def test_beam_and_ga_improve_on_paper_for_idct():
    """The refactor's point: broader search finds cheaper layouts."""
    run = record_suite_case("idct", {})
    paper, _ = plan_with("paper", run)
    beam, _ = plan_with("beam", run)
    evolved, _ = plan_with("evolutionary", run)
    assert beam.predicted_cost < paper.predicted_cost
    assert evolved.predicted_cost < paper.predicted_cost


def test_unknown_backend_rejected():
    """LayoutConfig validates the backend name eagerly."""
    with pytest.raises(ValueError, match="unknown planner backend"):
        LayoutConfig(columns=4, column_bytes=512, backend="nope")


def test_backend_registry_roundtrip():
    """get_backend returns the registered singletons."""
    for name in available_backends():
        assert get_backend(name).name == name
    with pytest.raises(ValueError, match="choose from"):
        get_backend("definitely-not-registered")


# ----------------------------------------------------------------------
# Exact-coloring node budget
# ----------------------------------------------------------------------
def _hard_adjacency(vertices: int = 14, seed: int = 5):
    """A dense random graph that forces real backtracking."""
    rng = np.random.default_rng(seed)
    names = [f"v{i}" for i in range(vertices)]
    adjacency = {name: set() for name in names}
    for i in range(vertices):
        for j in range(i + 1, vertices):
            if rng.random() < 0.6:
                adjacency[names[i]].add(names[j])
                adjacency[names[j]].add(names[i])
    return adjacency


class TestNodeBudget:
    """Exact coloring degrades to greedy instead of hanging."""

    def test_color_with_k_raises_on_budget(self):
        """A tiny budget interrupts the backtracking search."""
        adjacency = _hard_adjacency()
        # k=4: the greedy clique is exactly 4, so the search neither
        # fails trivially nor succeeds greedily — it has to backtrack.
        with pytest.raises(ColoringBudgetExceeded):
            color_with_k(adjacency, 4, node_budget=5)

    def test_exact_coloring_falls_back_to_greedy(self):
        """Budget exhaustion warns and returns the greedy coloring."""
        adjacency = _hard_adjacency()
        with pytest.warns(RuntimeWarning, match="node search budget"):
            coloring = exact_coloring(adjacency, node_budget=5)
        assert coloring == greedy_coloring(adjacency)
        for vertex, neighbors in adjacency.items():
            for neighbor in neighbors:
                assert coloring[vertex] != coloring[neighbor]

    def test_merging_survives_budget_exhaustion(self):
        """color_with_merging completes (greedily) under a tiny budget."""
        from repro.layout.graph import VertexInfo

        adjacency = _hard_adjacency()
        vertices = {
            name: VertexInfo(
                name=name, size=64, access_count=10, members=(name,)
            )
            for name in adjacency
        }
        weights = {}
        for vertex, neighbors in adjacency.items():
            for neighbor in neighbors:
                weights[frozenset((vertex, neighbor))] = 1 + (
                    len(vertex) + len(neighbor)
                )
        graph = ConflictGraph(vertices, weights)
        with pytest.warns(RuntimeWarning, match="search budget"):
            result = color_with_merging(graph, 4, node_budget=5)
        assert result.colors_used <= 4
        assert set(result.assignment) == set(adjacency)

    def test_unbudgeted_result_unchanged(self):
        """With a roomy budget the exact result is the exact result."""
        adjacency = _hard_adjacency(vertices=10)
        unbounded = exact_coloring(adjacency, node_budget=None)
        budgeted = exact_coloring(adjacency)
        assert budgeted == unbounded


# ----------------------------------------------------------------------
# PlannerSession
# ----------------------------------------------------------------------
class TestPlannerSession:
    """Content-addressed reuse across profiles, graphs and plans."""

    def test_identical_windows_plan_once(self):
        """The same window content yields the same cached objects."""
        run = record_suite_case("dequant", {})
        units = split_for_columns(run.memory_map.symbols, COLUMN_BYTES)
        config = LayoutConfig(columns=4, column_bytes=COLUMN_BYTES)
        session = PlannerSession()
        window = run.trace.slice(0, 512)
        first = session.plan(config, window, units)
        misses_after_first = session.stats["misses"]
        again = session.plan(
            config, run.trace.slice(0, 512), units
        )
        assert again is first  # served from cache, not recomputed
        assert session.stats["misses"] == misses_after_first
        assert session.stats["hits"] > 0

    def test_different_content_misses(self):
        """A different window content is a different cache entry."""
        run = record_suite_case("dequant", {})
        units = split_for_columns(run.memory_map.symbols, COLUMN_BYTES)
        config = LayoutConfig(columns=4, column_bytes=COLUMN_BYTES)
        session = PlannerSession()
        first = session.plan(config, run.trace.slice(0, 512), units)
        other = session.plan(config, run.trace.slice(512, 1024), units)
        assert other is not first

    def test_plans_match_sessionless_planner(self):
        """Session-routed plans equal direct DataLayoutPlanner plans."""
        run = record_suite_case("idct", {})
        units = split_for_columns(run.memory_map.symbols, COLUMN_BYTES)
        config = LayoutConfig(columns=4, column_bytes=COLUMN_BYTES)
        direct = DataLayoutPlanner(config).plan(run)
        session = PlannerSession()
        routed = session.plan(config, run.trace, units)
        assert routed.predicted_cost == direct.predicted_cost
        assert {
            name: (p.disposition, p.mask.bits)
            for name, p in routed.placements.items()
        } == {
            name: (p.disposition, p.mask.bits)
            for name, p in direct.placements.items()
        }

    def test_policy_replans_identical_windows_from_cache(self):
        """RepartitionPolicy hits its session on recurring phases."""
        run = record_suite_case("dequant", {})
        policy = RepartitionPolicy(
            config=LayoutConfig(
                columns=4, column_bytes=COLUMN_BYTES, line_size=16
            ),
            symbols=run.memory_map.symbols,
        )
        window = run.trace.slice(0, 256)
        first = policy.replan(window)
        entries_after_first = policy.session.stats["entries"]
        second = policy.replan(run.trace.slice(0, 256))
        assert policy.session.stats["entries"] == entries_after_first
        assert policy.session.stats["hits"] > 0
        assert (
            second.fresh_cost == first.fresh_cost
        )

    def test_session_cache_is_bounded(self):
        """A long stream of distinct windows cannot grow unbounded."""
        run = record_suite_case("dequant", {})
        units = split_for_columns(run.memory_map.symbols, COLUMN_BYTES)
        config = LayoutConfig(columns=4, column_bytes=COLUMN_BYTES)
        session = PlannerSession(max_entries=6)
        for start in range(0, 1024, 64):
            session.plan(
                config, run.trace.slice(start, start + 64), units
            )
        assert session.stats["entries"] <= 6

    def test_external_profile_digest_is_content_pinned(self):
        """Digests live on the profile object, not an id side-table."""
        run = record_suite_case("dequant", {})
        units = split_for_columns(run.memory_map.symbols, COLUMN_BYTES)
        config = LayoutConfig(columns=4, column_bytes=COLUMN_BYTES)
        session = PlannerSession()
        for _ in range(3):
            # Caller-owned profiles dropped each iteration: id() reuse
            # must never resurrect a stale digest.
            profile = profile_trace(run.trace, units, by_address=True)
            planned = session.plan_from_profile(config, profile, units)
            direct = DataLayoutPlanner(config).plan_from_profile(
                profile, units
            )
            assert planned.predicted_cost == direct.predicted_cost

    def test_rejects_disk_backed_cache(self, tmp_path):
        """Rich objects cannot round-trip a disk cache tier."""
        from repro.sim.engine.cache import ResultCache

        with pytest.raises(ValueError, match="memory-only"):
            PlannerSession(ResultCache(tmp_path))


@settings(max_examples=10)
@given(case=random_workload(max_length=120))
def test_session_plan_equals_direct_plan(case):
    """Hypothesis: session caching never changes planner output."""
    run, scratchpad, split = case
    config = LayoutConfig(
        columns=4,
        column_bytes=COLUMN_BYTES,
        scratchpad_columns=min(scratchpad, 3),
        split_oversized=split,
    )
    units = (
        split_for_columns(run.memory_map.symbols, COLUMN_BYTES)
        if split
        else run.memory_map.symbols
    )
    direct = DataLayoutPlanner(config).plan(run)
    routed = PlannerSession().plan(config, run.trace, units)
    assert routed.predicted_cost == direct.predicted_cost
    assert {
        name: (p.disposition, p.mask.bits)
        for name, p in routed.placements.items()
    } == {
        name: (p.disposition, p.mask.bits)
        for name, p in direct.placements.items()
    }

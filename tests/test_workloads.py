"""Tests for the instrumented workloads: numerics and trace properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.arrays import TracedArray, TracedScalar
from repro.workloads.base import Workload
from repro.workloads.gzip_like import (
    GzipLikeCompressor,
    canonical_codes,
    decompress,
    distance_bucket,
    huffman_code_lengths,
    make_gzip_job,
)
from repro.workloads.kernels import Conv2D, FIRFilter, Histogram, MatrixMultiply
from repro.workloads.mpeg import (
    BLOCK_ELEMENTS,
    DequantRoutine,
    IdctRoutine,
    MPEGDecodeApp,
    PlusRoutine,
    reference_idct_2d,
)
from repro.workloads.suite import available_workloads, make_workload


class _Probe(Workload):
    """Minimal workload for base-class tests."""

    def __init__(self, **kwargs):
        super().__init__(name="probe", **kwargs)
        self.data = self.array("data", 4)

    def run(self) -> None:
        self.begin_phase("p1")
        self.data[0] = 7
        self.end_phase()
        self.begin_phase("p2")
        self.work(5)
        _ = self.data[0]
        self.end_phase()


class TestTracedStorage:
    def test_array_records_reads_and_writes(self):
        probe = _Probe()
        probe.data[1] = 42
        value = probe.data[1]
        assert value == 42
        trace = probe.builder.build()
        assert list(trace.writes) == [True, False]
        assert trace.variable_of(0) == "data"

    def test_array_addresses(self):
        probe = _Probe()
        probe.data[2] = 1
        trace = probe.builder.build()
        assert trace.addresses[0] == probe.data.variable.base + 2 * 2

    def test_array_bounds(self):
        probe = _Probe()
        with pytest.raises(IndexError):
            probe.data[4] = 0
        with pytest.raises(IndexError):
            _ = probe.data[-1]

    def test_peek_poke_untraced(self):
        probe = _Probe()
        probe.data.poke(0, 9)
        assert probe.data.peek(0) == 9
        assert len(probe.builder) == 0

    def test_load_silent(self):
        probe = _Probe()
        probe.data.load_silent([1, 2, 3, 4])
        assert list(probe.data.snapshot()) == [1, 2, 3, 4]
        assert len(probe.builder) == 0

    def test_load_silent_length_checked(self):
        probe = _Probe()
        with pytest.raises(ValueError):
            probe.data.load_silent([1, 2])

    def test_initializer_length_checked(self):
        probe = _Probe()
        with pytest.raises(ValueError, match="initializer"):
            probe.array("bad", 4, initial=[1, 2])

    def test_scalar_read_write(self):
        probe = _Probe()
        counter = probe.scalar("counter", initial=10)
        counter.add(5)
        assert counter.peek() == 15
        trace = probe.builder.build()
        assert list(trace.writes) == [False, True]  # read-modify-write

    def test_scalar_requires_single_element(self):
        probe = _Probe()
        with pytest.raises(ValueError, match="one element"):
            TracedScalar(probe.data.variable, probe.builder)


class TestWorkloadBase:
    def test_phases_recorded(self):
        run = _Probe().record()
        assert [marker.label for marker in run.phases] == ["p1", "p2"]
        assert run.phases[0].start == 0
        assert run.phases[0].stop == 1

    def test_phase_trace(self):
        run = _Probe().record()
        piece = run.phase_trace("p2")
        assert len(piece) == 1
        assert piece.gaps[0] == 5

    def test_phase_trace_unknown(self):
        run = _Probe().record()
        with pytest.raises(KeyError):
            run.phase_trace("nope")

    def test_unclosed_phase_detected(self):
        class Bad(_Probe):
            def run(self):
                self.begin_phase("open")

        with pytest.raises(RuntimeError, match="unclosed"):
            Bad().record()

    def test_end_without_begin(self):
        probe = _Probe()
        with pytest.raises(RuntimeError):
            probe.end_phase()

    def test_variables_page_aligned(self):
        probe = _Probe()
        a = probe.array("a", 4)
        b = probe.array("b", 4)
        assert not probe.memory_map.shares_page(a.variable, b.variable)


class TestMPEG:
    def test_dequant_numerics(self):
        routine = DequantRoutine(blocks=2)
        original = routine.coeffs.snapshot()
        qtable = routine.qtable.snapshot()
        run = routine.record()
        out = run.outputs["coeffs"]
        for i in range(2 * BLOCK_ELEMENTS):
            expected = (original[i] * qtable[i % BLOCK_ELEMENTS] * 2) >> 1
            assert out[i] == expected

    def test_dequant_footprint_fits_2kb(self):
        run = DequantRoutine().record()
        assert run.memory_map.symbols.total_bytes() <= 2048

    def test_plus_saturates(self):
        routine = PlusRoutine(blocks=1)
        routine.pred.load_silent([250] * 64)
        routine.resid.load_silent([40] * 64)
        run = routine.record()
        assert (run.outputs["recon"] == 255).all()

    def test_plus_clamps_below_zero(self):
        routine = PlusRoutine(blocks=1)
        routine.pred.load_silent([5] * 64)
        routine.resid.load_silent([-40] * 64)
        run = routine.record()
        assert (run.outputs["recon"] == 0).all()

    def test_idct_matches_direct_form(self):
        routine = IdctRoutine(blocks=2)
        run = routine.record()
        for block in range(2):
            start = block * BLOCK_ELEMENTS
            coeffs = routine.coeffs.snapshot()[
                start:start + BLOCK_ELEMENTS
            ].reshape(8, 8)
            expected = reference_idct_2d(coeffs)
            got = run.outputs["pixels"][start:start + BLOCK_ELEMENTS]
            np.testing.assert_allclose(got.reshape(8, 8), expected,
                                       atol=1e-9)

    def test_idct_matches_scipy(self):
        scipy_fft = pytest.importorskip("scipy.fft")
        routine = IdctRoutine(blocks=1)
        run = routine.record()
        coeffs = routine.coeffs.snapshot()[:64].reshape(8, 8)
        expected = scipy_fft.idctn(coeffs, norm="ortho")
        np.testing.assert_allclose(
            run.outputs["pixels"][:64].reshape(8, 8), expected, atol=1e-9
        )

    def test_idct_exceeds_2kb(self):
        """The paper's premise: idct's data cannot fit the scratchpad."""
        run = IdctRoutine().record()
        assert run.memory_map.symbols.total_bytes() > 2048

    def test_idct_costab_is_hot(self):
        run = IdctRoutine(blocks=2).record()
        counts = {
            name: len(run.trace.positions_of(name))
            for name in run.trace.variables()
        }
        assert counts["costab"] > counts["pixels"]

    def test_app_phases(self):
        run = MPEGDecodeApp(blocks=1, frames=2).record()
        assert run.phase_labels() == ["dequant", "idct", "plus"]
        assert len(run.phases) == 6  # three per frame

    def test_app_recon_in_range(self):
        run = MPEGDecodeApp(blocks=1, frames=1).record()
        recon = run.outputs["recon"]
        assert recon.min() >= 0 and recon.max() <= 255


class TestGzip:
    def test_round_trip(self):
        workload = GzipLikeCompressor(input_bytes=512, seed=1)
        run = workload.record()
        recovered = decompress(run.outputs["compressed"])
        assert recovered == bytes(bytearray(run.outputs["original"]))

    def test_compresses_redundant_input(self):
        run = GzipLikeCompressor(input_bytes=2048, seed=0).record()
        assert len(run.outputs["compressed"]) < 2048

    def test_phases(self):
        run = GzipLikeCompressor(input_bytes=256).record()
        assert run.phase_labels() == ["lz", "huffman", "encode"]

    def test_structures_traced(self):
        run = GzipLikeCompressor(input_bytes=256).record()
        variables = set(run.trace.variables())
        assert {"input", "head", "prev", "freq_lit", "code_lit",
                "output"} <= variables

    @given(seed=st.integers(0, 30))
    @settings(max_examples=8, deadline=None)
    def test_round_trip_property(self, seed):
        run = GzipLikeCompressor(input_bytes=256, seed=seed).record()
        assert decompress(run.outputs["compressed"]) == bytes(
            bytearray(run.outputs["original"])
        )

    def test_make_gzip_job_names_and_seeds(self):
        job_a = make_gzip_job("A", input_bytes=128)
        job_b = make_gzip_job("B", input_bytes=128)
        assert job_a.name == "gzipA"
        assert job_b.name == "gzipB"
        assert not np.array_equal(
            job_a.input.snapshot(), job_b.input.snapshot()
        )


class TestHuffmanPieces:
    def test_lengths_prefix_free_budget(self):
        """Kraft inequality: sum 2^-len <= 1."""
        lengths = huffman_code_lengths([5, 9, 12, 13, 1, 0, 45])
        kraft = sum(2.0 ** -l for l in lengths if l > 0)
        assert kraft <= 1.0 + 1e-12

    def test_single_symbol(self):
        assert huffman_code_lengths([0, 7, 0]) == [0, 1, 0]

    def test_empty(self):
        assert huffman_code_lengths([0, 0]) == [0, 0]

    def test_canonical_codes_are_prefix_free(self):
        lengths = huffman_code_lengths([3, 3, 2, 2, 5, 5, 1])
        codes = canonical_codes(lengths)
        bit_strings = [
            format(codes[i], f"0{lengths[i]}b")
            for i in range(len(lengths))
            if lengths[i] > 0
        ]
        for i, first in enumerate(bit_strings):
            for j, second in enumerate(bit_strings):
                if i != j:
                    assert not second.startswith(first)

    @given(
        frequencies=st.lists(st.integers(0, 100), min_size=2, max_size=40)
    )
    @settings(max_examples=50, deadline=None)
    def test_huffman_optimal_vs_uniform(self, frequencies):
        """Huffman never beats the entropy bound nor loses to uniform."""
        total = sum(frequencies)
        if total == 0:
            return
        lengths = huffman_code_lengths(frequencies)
        cost = sum(f * l for f, l in zip(frequencies, lengths))
        used = sum(1 for f in frequencies if f > 0)
        uniform_bits = max(1, int(np.ceil(np.log2(max(used, 1)))))
        assert cost <= total * uniform_bits + 1e-9

    def test_distance_buckets(self):
        assert distance_bucket(1) == (0, 0, 0)
        assert distance_bucket(2) == (1, 0, 1)
        assert distance_bucket(3) == (1, 1, 1)
        assert distance_bucket(1024) == (10, 0, 10)
        with pytest.raises(ValueError):
            distance_bucket(0)


class TestKernels:
    def test_fir_matches_numpy(self):
        kernel = FIRFilter(signal_length=64, tap_count=8)
        signal = kernel.signal.snapshot()
        taps = kernel.taps.snapshot()
        run = kernel.record()
        expected = np.convolve(signal, taps)[:64]
        np.testing.assert_array_equal(run.outputs["output"], expected)

    def test_matmul_matches_numpy(self):
        kernel = MatrixMultiply(dimension=6)
        a = kernel.matrix_a.snapshot().reshape(6, 6)
        b = kernel.matrix_b.snapshot().reshape(6, 6)
        run = kernel.record()
        np.testing.assert_array_equal(
            run.outputs["matrix_c"].reshape(6, 6), a @ b
        )

    def test_conv2d_center_matches_manual(self):
        kernel = Conv2D(width=8, height=8)
        image = kernel.image.snapshot().reshape(8, 8)
        weights = kernel.kernel.snapshot().reshape(3, 3)
        run = kernel.record()
        result = run.outputs["result"].reshape(8, 8)
        manual = sum(
            image[3 + dy, 4 + dx] * weights[dy + 1, dx + 1]
            for dy in (-1, 0, 1)
            for dx in (-1, 0, 1)
        )
        assert result[3, 4] == manual

    def test_histogram_counts(self):
        kernel = Histogram(sample_count=256, bin_count=16)
        samples = kernel.samples.snapshot()
        run = kernel.record()
        expected = np.bincount(samples * 16 // 256, minlength=16)
        np.testing.assert_array_equal(run.outputs["bins"], expected)


class TestStreamScan:
    def test_checksum_matches_strided_sum(self):
        scan = make_workload(
            "scan", buffer_bytes=1024, stride_bytes=16, passes=2
        )
        values = scan.buffer.snapshot()
        run = scan.record()
        expected = 2 * int(values[:: scan.step].sum())
        assert int(run.outputs["checksum"][0]) == expected

    def test_scan_misses_nearly_every_access(self):
        """The polluter contract: stride >= line size means near-zero
        reuse in any cache smaller than the buffer."""
        from repro.cache.fastsim import simulate_trace
        from repro.cache.geometry import CacheGeometry

        run = make_workload(
            "scan", buffer_bytes=8192, stride_bytes=16, passes=2
        ).record()
        geometry = CacheGeometry(line_size=16, sets=32, columns=4)
        outcome = simulate_trace(run.trace.addresses, geometry)
        assert outcome.miss_rate > 0.95

    def test_stride_validation(self):
        with pytest.raises(ValueError):
            make_workload("scan", stride_bytes=1, element_size=2)
        with pytest.raises(ValueError):
            make_workload("scan", stride_bytes=3, element_size=2)


class TestSuite:
    def test_registry_complete(self):
        assert "dequant" in available_workloads()
        assert "gzip" in available_workloads()
        assert "scan" in available_workloads()

    def test_make_workload(self):
        workload = make_workload("histogram", sample_count=16)
        assert workload.name == "histogram"

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("quake")

    @pytest.mark.parametrize("name", ["fir", "matmul", "conv2d", "histogram"])
    def test_all_kernels_record(self, name):
        kwargs = {
            "fir": {"signal_length": 32, "tap_count": 4},
            "matmul": {"dimension": 4},
            "conv2d": {"width": 6, "height": 6},
            "histogram": {"sample_count": 32, "bin_count": 8},
        }[name]
        run = make_workload(name, **kwargs).record()
        assert len(run.trace) > 0
        assert run.phases

"""The R003 C-prototype parser, checked against the real kernel.

Two layers: unit tests of the parser/comparator on the *actual*
``_lockstep.c`` / ``_compiled.py`` pair (which must agree), and
mutation fixtures — a deliberately broken copy of the wrapper whose
drift the rule must catch with **exactly one** finding per mutation.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.cparse import (
    compare_declarations,
    expected_ctype,
    extract_ctypes_declarations,
    parse_prototypes,
)
from repro.analysis.engine import analyze_module
from repro.analysis.rules.ffi_drift import FfiDrift

ENGINE_DIR = (
    Path(__file__).resolve().parents[1] / "src" / "repro" / "sim" / "engine"
)
KERNEL_C = ENGINE_DIR / "_lockstep.c"
WRAPPER_PY = ENGINE_DIR / "_compiled.py"

#: The kernel's exported functions and their C-side arity.
EXPORTED = {
    "repro_lockstep_flags": 11,
    "repro_blocks_count": 17,
    "repro_schedule_count": 16,
    "repro_fused_multitask": 17,
}


class TestExpectedCtype:
    """C declaration -> ctypes class mapping."""

    @pytest.mark.parametrize(
        ("declaration", "ctype"),
        [
            ("int64_t n", "c_int64"),
            ("int32_t blocks_is32", "c_int32"),
            ("const int64_t *blocks", "c_void_p"),
            ("const void *restrict data", "c_void_p"),
            ("double scale", "c_double"),
            ("void", None),
            ("struct opaque thing", None),
        ],
    )
    def test_mapping(self, declaration, ctype):
        """Scalars map by width; any pointer is a raw address."""
        assert expected_ctype(declaration) == ctype


class TestRealKernelPair:
    """The shipped C source and wrapper must agree exactly."""

    def test_all_exports_parsed(self):
        """Every API function is found with the right arity."""
        prototypes = {
            prototype.name: prototype
            for prototype in parse_prototypes(
                KERNEL_C.read_text(encoding="utf-8")
            )
        }
        assert set(prototypes) == set(EXPORTED)
        for name, arity in EXPORTED.items():
            prototype = prototypes[name]
            assert len(prototype.params) == arity, name
            assert prototype.return_type == "void"
            assert prototype.expected_restype is None
            assert all(
                param.ctype is not None for param in prototype.params
            ), f"{name}: unparsed parameter"

    def test_wrapper_declarations_extracted(self):
        """argtypes/restype for every export, aliases resolved."""
        import ast

        tree = ast.parse(WRAPPER_PY.read_text(encoding="utf-8"))
        declarations = extract_ctypes_declarations(tree)
        assert set(EXPORTED) <= set(declarations)
        for name, arity in EXPORTED.items():
            declaration = declarations[name]
            assert len(declaration.argtypes) == arity, name
            assert declaration.restype is None
            assert None not in declaration.argtypes, name

    def test_zero_drift(self):
        """The real pair is in sync: the comparator returns nothing."""
        import ast

        prototypes = parse_prototypes(
            KERNEL_C.read_text(encoding="utf-8")
        )
        declarations = extract_ctypes_declarations(
            ast.parse(WRAPPER_PY.read_text(encoding="utf-8"))
        )
        assert compare_declarations(prototypes, declarations) == []

    def test_comment_stripping_keeps_line_numbers(self):
        """Prototype line numbers point into the original source."""
        source = KERNEL_C.read_text(encoding="utf-8")
        lines = source.splitlines()
        for prototype in parse_prototypes(source):
            assert prototype.name in lines[prototype.line - 1]


#: Textual mutations of the real wrapper; each must yield exactly one
#: R003 finding naming the mutated function.
MUTATIONS = {
    "wrong-width": (
        "        i64, ptr, i32, ptr, ptr, ptr, i64, i64, i64, i64, i64, i64,",
        "        i64, ptr, i64, ptr, ptr, ptr, i64, i64, i64, i64, i64, i64,",
    ),
    "swapped-arg-order": (
        "        i64, ptr, i32, ptr, ptr, ptr, i64, i64, i64, i64, i64, i64,",
        "        ptr, i64, i32, ptr, ptr, ptr, i64, i64, i64, i64, i64, i64,",
    ),
    "missing-arg": (
        "        i64, ptr, i32, ptr, ptr, ptr, i64, i64, i64, i64, i64, i64,",
        "        i64, ptr, i32, ptr, ptr, i64, i64, i64, i64, i64, i64,",
    ),
}


class TestMutationFixtures:
    """R003 catches each way the wrapper can drift."""

    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_mutation_yields_one_finding(
        self, mutation: str, tmp_path: Path
    ):
        """One broken declaration -> exactly one R003 finding."""
        original, mutated = MUTATIONS[mutation]
        wrapper_source = WRAPPER_PY.read_text(encoding="utf-8")
        assert original in wrapper_source, (
            "mutation anchor drifted from _compiled.py; update the "
            "fixture alongside the declaration"
        )
        broken = wrapper_source.replace(original, mutated)
        (tmp_path / "_lockstep.c").write_text(
            KERNEL_C.read_text(encoding="utf-8"), encoding="utf-8"
        )
        broken_path = tmp_path / "_compiled.py"
        broken_path.write_text(broken, encoding="utf-8")
        findings, _ = analyze_module(
            broken,
            "src/repro/sim/engine/_compiled.py",
            [FfiDrift()],
            path=broken_path,
        )
        assert len(findings) == 1, [f.render() for f in findings]
        finding = findings[0]
        assert finding.rule == "R003"
        assert "repro_blocks_count" in finding.message

    def test_missing_c_source_flagged(self, tmp_path: Path):
        """Declarations with no sibling .c file cannot be checked."""
        source = textwrap.dedent(
            """
            import ctypes

            def _declare(lib):
                lib.orphan_fn.restype = None
                lib.orphan_fn.argtypes = [ctypes.c_int64]
                return lib
            """
        )
        module_path = tmp_path / "wrapper.py"
        module_path.write_text(source, encoding="utf-8")
        findings, _ = analyze_module(
            source, "src/repro/x/wrapper.py", [FfiDrift()],
            path=module_path,
        )
        assert len(findings) == 1
        assert "no sibling *.c source" in findings[0].message

    def test_undeclared_export_flagged(self, tmp_path: Path):
        """A C export the wrapper never declares is drift too."""
        (tmp_path / "kernel.c").write_text(
            "#define API __attribute__((visibility(\"default\")))\n"
            "API void declared_fn(int64_t n) { (void)n; }\n"
            "API void forgotten_fn(int64_t n) { (void)n; }\n",
            encoding="utf-8",
        )
        source = textwrap.dedent(
            """
            import ctypes

            def _declare(lib):
                lib.declared_fn.restype = None
                lib.declared_fn.argtypes = [ctypes.c_int64]
                return lib
            """
        )
        module_path = tmp_path / "wrapper.py"
        module_path.write_text(source, encoding="utf-8")
        findings, _ = analyze_module(
            source, "src/repro/x/wrapper.py", [FfiDrift()],
            path=module_path,
        )
        assert len(findings) == 1
        assert "forgotten_fn" in findings[0].message

"""Tests for the column cache — the paper's Section 2 semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.column_cache import ColumnCache, SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.cache.stats import MissKind
from repro.mem.address import AddressRange
from repro.utils.bitvector import ColumnMask


def geometry(sets=4, columns=4, line=16):
    return CacheGeometry(line_size=line, sets=sets, columns=columns)


def full(columns=4):
    return ColumnMask.all_columns(columns)


class TestBasicBehaviour:
    def test_miss_then_hit(self):
        cache = ColumnCache(geometry())
        first = cache.access(0x100)
        second = cache.access(0x100)
        assert not first.hit and first.filled
        assert second.hit

    def test_same_line_different_offsets_hit(self):
        cache = ColumnCache(geometry())
        cache.access(0x100)
        assert cache.access(0x10F).hit

    def test_adjacent_line_misses(self):
        cache = ColumnCache(geometry())
        cache.access(0x100)
        assert not cache.access(0x110).hit

    def test_mask_width_checked(self):
        cache = ColumnCache(geometry(columns=4))
        with pytest.raises(ValueError, match="width"):
            cache.access(0, mask=ColumnMask.of(0, width=8))

    def test_policy_shape_checked(self):
        from repro.cache.replacement import LRUPolicy

        with pytest.raises(ValueError, match="shape"):
            ColumnCache(geometry(sets=4), policy=LRUPolicy(sets=8, ways=4))

    def test_stats_counts(self):
        cache = ColumnCache(geometry())
        cache.access(0x100)
        cache.access(0x100, is_write=True)
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.reads == 1
        assert stats.writes == 1
        assert stats.hit_rate == 0.5


class TestColumnRestriction:
    def test_fills_only_into_permitted_columns(self):
        cache = ColumnCache(geometry())
        mask = ColumnMask.of(1, 2, width=4)
        for block in range(16):
            result = cache.access(block * 16 * 4, mask=mask)  # all set 0
            if result.filled:
                assert result.column in (1, 2)

    def test_lookup_ignores_mask(self):
        """A line resident outside the mask still hits (paper 2.1)."""
        cache = ColumnCache(geometry())
        cache.access(0x100, mask=ColumnMask.of(0, width=4))
        line = cache.find_line(0x100)
        assert line.column == 0
        result = cache.access(0x100, mask=ColumnMask.of(3, width=4))
        assert result.hit
        # Data did not move.
        assert cache.find_line(0x100).column == 0

    def test_graceful_repartitioning(self):
        """Remapped data stays until replaced, then refills to the new
        column — the paper's repartitioning story."""
        cache = ColumnCache(geometry(sets=1))
        old_mask = ColumnMask.of(0, width=4)
        new_mask = ColumnMask.of(2, width=4)
        cache.access(0x0, mask=old_mask)
        # After remapping, accesses still hit in the old column.
        assert cache.access(0x0, mask=new_mask).hit
        # Force eviction: fill column 0 with a conflicting line.
        cache.access(0x40, mask=old_mask)  # same set, column 0
        assert not cache.contains(0x0)
        # The next access caches it in the new column.
        refill = cache.access(0x0, mask=new_mask)
        assert refill.filled and refill.column == 2

    def test_empty_mask_bypasses(self):
        cache = ColumnCache(geometry())
        result = cache.access(0x100, mask=ColumnMask.none(4))
        assert result.bypassed and not result.filled
        assert cache.stats.bypasses == 1
        assert not cache.contains(0x100)

    def test_empty_mask_still_hits_resident_line(self):
        cache = ColumnCache(geometry())
        cache.access(0x100, mask=full())
        assert cache.access(0x100, mask=ColumnMask.none(4)).hit

    def test_disjoint_masks_never_interfere(self):
        """Isolation: a stream restricted to columns 2-3 cannot evict
        data in columns 0-1."""
        cache = ColumnCache(geometry(sets=4))
        mine = ColumnMask.of(0, 1, width=4)
        other = ColumnMask.of(2, 3, width=4)
        cache.access(0x0, mask=mine)
        cache.access(0x40, mask=mine)
        for block in range(64):
            cache.access(0x10000 + block * 16, mask=other)
        assert cache.contains(0x0)
        assert cache.contains(0x40)


class TestWritePolicy:
    def test_write_allocate_fills(self):
        cache = ColumnCache(geometry(), write_allocate=True)
        result = cache.access(0x100, is_write=True)
        assert result.filled
        assert cache.find_line(0x100).dirty

    def test_write_no_allocate_bypasses(self):
        cache = ColumnCache(geometry(), write_allocate=False)
        result = cache.access(0x100, is_write=True)
        assert result.bypassed
        assert not cache.contains(0x100)

    def test_write_no_allocate_read_still_fills(self):
        cache = ColumnCache(geometry(), write_allocate=False)
        assert cache.access(0x100, is_write=False).filled

    def test_dirty_eviction_reports_writeback(self):
        cache = ColumnCache(geometry(sets=1, columns=1))
        cache.access(0x0, is_write=True)
        result = cache.access(0x40)
        assert result.evicted_address == 0x0
        assert result.writeback
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = ColumnCache(geometry(sets=1, columns=1))
        cache.access(0x0)
        assert not cache.access(0x40).writeback

    def test_write_hit_marks_dirty(self):
        cache = ColumnCache(geometry())
        cache.access(0x100)
        cache.access(0x100, is_write=True)
        assert cache.find_line(0x100).dirty


class TestMissClassification:
    def test_cold_miss(self):
        cache = ColumnCache(geometry(), classify_misses=True)
        assert cache.access(0x100).miss_kind is MissKind.COLD

    def test_capacity_miss(self):
        cache = ColumnCache(
            geometry(sets=2, columns=2), classify_misses=True
        )
        # Touch 3x the cache capacity sequentially, twice: the second
        # pass misses because the working set exceeds total capacity.
        lines = 12
        for _ in range(2):
            for index in range(lines):
                result = cache.access(index * 16)
        assert result.miss_kind is MissKind.CAPACITY

    def test_conflict_miss(self):
        cache = ColumnCache(
            geometry(sets=2, columns=2), classify_misses=True
        )
        # Three lines in the same set of a 2-way cache; total working
        # set (3 lines) fits the 4-line cache, so misses are conflicts.
        for _ in range(3):
            for index in range(3):
                result = cache.access(index * 32)  # all set 0
        assert result.miss_kind is MissKind.CONFLICT
        assert cache.stats.conflict_misses > 0

    def test_masked_self_conflicts_classified_as_conflicts(self):
        """Misses caused purely by a restrictive mask are conflicts."""
        cache = ColumnCache(geometry(sets=1, columns=4), classify_misses=True)
        one_column = ColumnMask.of(0, width=4)
        for _ in range(3):
            for index in range(2):
                cache.access(index * 16, mask=one_column)
        assert cache.stats.conflict_misses > 0
        assert cache.stats.capacity_misses == 0


class TestBulkOperations:
    def test_preload_touches_every_line(self):
        cache = ColumnCache(geometry())
        count = cache.preload(AddressRange(0x100, 0x50))
        assert count == 5
        assert cache.contains(0x100) and cache.contains(0x140)

    def test_flush(self):
        cache = ColumnCache(geometry())
        cache.access(0x100, is_write=True)
        dirty = cache.flush()
        assert dirty == 1
        assert not cache.contains(0x100)

    def test_flush_preserves_cold_history(self):
        cache = ColumnCache(geometry())
        cache.access(0x100)
        cache.flush()
        result = cache.access(0x100)
        assert result.miss_kind is MissKind.UNCLASSIFIED  # not cold again

    def test_flush_with_history_reset(self):
        cache = ColumnCache(geometry())
        cache.access(0x100)
        cache.flush(invalidate_history=True)
        assert cache.access(0x100).miss_kind is MissKind.COLD

    def test_flush_columns_selective(self):
        cache = ColumnCache(geometry(sets=1))
        cache.access(0x00, mask=ColumnMask.of(0, width=4))
        cache.access(0x40, mask=ColumnMask.of(1, width=4))
        invalidated = cache.flush_columns(ColumnMask.of(0, width=4))
        assert invalidated == 1
        assert not cache.contains(0x00)
        assert cache.contains(0x40)

    def test_invalidate_address(self):
        cache = ColumnCache(geometry())
        cache.access(0x100)
        assert cache.invalidate_address(0x100)
        assert not cache.invalidate_address(0x100)

    def test_occupancy(self):
        cache = ColumnCache(geometry(sets=2, columns=2))
        cache.access(0x00, mask=ColumnMask.of(1, width=2))
        cache.access(0x10, mask=ColumnMask.of(1, width=2))
        assert cache.occupancy() == [0, 2]

    def test_resident_lines(self):
        cache = ColumnCache(geometry())
        cache.access(0x100, is_write=True)
        lines = list(cache.resident_lines())
        assert len(lines) == 1
        assert lines[0].address == 0x100
        assert lines[0].dirty


class TestFullMaskEquivalence:
    @given(
        addresses=st.lists(st.integers(0, 1023), min_size=1, max_size=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_full_mask_equals_standard_cache(self, addresses):
        """Property: all-ones masks make the column cache a standard
        set-associative cache."""
        g = geometry(sets=4, columns=2)
        column = ColumnCache(g)
        standard = SetAssociativeCache(g)
        for address in addresses:
            masked = column.access(address, mask=full(2))
            plain = standard.access(address)
            assert masked.hit == plain.hit
            assert masked.column == plain.column

    def test_stats_snapshot_delta(self):
        cache = ColumnCache(geometry())
        cache.access(0x100)
        before = cache.stats.snapshot()
        cache.access(0x100)
        cache.access(0x200)
        delta = cache.stats.delta_since(before)
        assert delta.hits == 1
        assert delta.misses == 1

"""Tests for the command-line tools."""

import pytest

from repro.trace.cli import main as trace_main
from repro.trace.dinero import load_trace


class TestTraceCLI:
    def test_generate_and_stats(self, tmp_path, capsys):
        out = tmp_path / "t.din"
        code = trace_main(
            ["generate", str(out), "--kind", "zipf", "--count", "500"]
        )
        assert code == 0
        assert load_trace(out).access_count == 500
        code = trace_main(["stats", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "500 accesses" in captured
        assert "zipf" in captured

    @pytest.mark.parametrize(
        "kind", ["sequential", "looped", "random", "pointer_chase"]
    )
    def test_all_generators(self, tmp_path, kind):
        out = tmp_path / f"{kind}.din"
        assert trace_main(
            ["generate", str(out), "--kind", kind, "--count", "100"]
        ) == 0
        assert load_trace(out).access_count > 0

    def test_simulate(self, tmp_path, capsys):
        out = tmp_path / "t.din"
        trace_main(
            ["generate", str(out), "--kind", "looped", "--count", "400",
             "--span", "512"]
        )
        code = trace_main(
            ["simulate", str(out), "--size", "2048", "--columns", "4"]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "miss_rate" in captured

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            trace_main([])


class TestExperimentsCLI:
    def test_figure4_quick(self, capsys):
        from repro.experiments.cli import main as experiments_main

        code = experiments_main(["figure4", "--quick"])
        captured = capsys.readouterr().out
        assert code == 0, captured
        assert "figure4-dequant" in captured
        assert "all shape checks passed" in captured

    def test_bad_target_rejected(self):
        from repro.experiments.cli import main as experiments_main

        with pytest.raises(SystemExit):
            experiments_main(["figure9"])

"""Tests for the command-line tools."""

import pytest

from repro.trace.cli import main as trace_main
from repro.trace.dinero import load_trace


class TestTraceCLI:
    def test_generate_and_stats(self, tmp_path, capsys):
        out = tmp_path / "t.din"
        code = trace_main(
            ["generate", str(out), "--kind", "zipf", "--count", "500"]
        )
        assert code == 0
        assert load_trace(out).access_count == 500
        code = trace_main(["stats", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "500 accesses" in captured
        assert "zipf" in captured

    @pytest.mark.parametrize(
        "kind", ["sequential", "looped", "random", "pointer_chase"]
    )
    def test_all_generators(self, tmp_path, kind):
        out = tmp_path / f"{kind}.din"
        assert trace_main(
            ["generate", str(out), "--kind", kind, "--count", "100"]
        ) == 0
        assert load_trace(out).access_count > 0

    def test_simulate(self, tmp_path, capsys):
        out = tmp_path / "t.din"
        trace_main(
            ["generate", str(out), "--kind", "looped", "--count", "400",
             "--span", "512"]
        )
        code = trace_main(
            ["simulate", str(out), "--size", "2048", "--columns", "4"]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "miss_rate" in captured

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            trace_main([])


class TestExperimentsCLI:
    def test_figure4_quick(self, capsys):
        from repro.experiments.cli import main as experiments_main

        code = experiments_main(["figure4", "--quick"])
        captured = capsys.readouterr().out
        assert code == 0, captured
        assert "figure4-dequant" in captured
        assert "all shape checks passed" in captured

    def test_bad_target_rejected(self):
        from repro.experiments.cli import main as experiments_main

        with pytest.raises(SystemExit):
            experiments_main(["figure9"])


class TestTraceCLIDetails:
    """Deeper coverage of the trace CLI's options and error paths."""

    def test_generate_respects_seed_and_element_size(self, tmp_path):
        first = tmp_path / "a.din"
        second = tmp_path / "b.din"
        third = tmp_path / "c.din"
        for out, seed in ((first, "1"), (second, "1"), (third, "2")):
            assert trace_main(
                ["generate", str(out), "--kind", "random",
                 "--count", "200", "--seed", seed,
                 "--element-size", "4"]
            ) == 0
        same = load_trace(first)
        again = load_trace(second)
        different = load_trace(third)
        assert list(same.addresses) == list(again.addresses)
        assert list(same.addresses) != list(different.addresses)

    def test_generate_base_offsets_addresses(self, tmp_path):
        out = tmp_path / "seq.din"
        trace_main(
            ["generate", str(out), "--kind", "sequential",
             "--count", "10", "--base", "4096"]
        )
        trace = load_trace(out)
        assert int(trace.addresses.min()) >= 4096

    def test_simulate_reports_exact_counts(self, tmp_path, capsys):
        out = tmp_path / "t.din"
        trace_main(
            ["generate", str(out), "--kind", "sequential",
             "--count", "256", "--element-size", "16"]
        )
        capsys.readouterr()
        assert trace_main(
            ["simulate", str(out), "--size", "4096",
             "--line-size", "16", "--columns", "1"]
        ) == 0
        captured = capsys.readouterr().out
        # A pure 16B-stride stream through 16B lines never reuses one.
        assert "hits=0" in captured
        assert "accesses=256" in captured

    def test_stats_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            trace_main(["stats", str(tmp_path / "missing.din")])

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            trace_main(
                ["generate", str(tmp_path / "x.din"), "--kind", "bogus"]
            )

    def test_module_entry_point(self, tmp_path):
        import subprocess
        import sys

        out = tmp_path / "m.din"
        completed = subprocess.run(
            [sys.executable, "-m", "repro.trace", "generate", str(out),
             "--count", "50"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stderr
        assert load_trace(out).access_count == 50


class TestExperimentsCLIEngine:
    """The experiments CLI drives sweeps through the engine."""

    def test_cache_dir_makes_second_run_incremental(
        self, tmp_path, capsys
    ):
        from repro.experiments.cli import main as experiments_main

        arguments = [
            "figure4", "--quick", "--cache-dir", str(tmp_path)
        ]
        assert experiments_main(arguments) == 0
        first = capsys.readouterr().out
        assert "jobs executed" in first
        assert experiments_main(arguments) == 0
        second = capsys.readouterr().out
        assert "0 jobs executed" in second
        # Identical tables either way (ignore timing + engine stats).
        def tables(text):
            return "\n".join(
                line
                for line in text.splitlines()
                if "(" not in line and "sweep engine" not in line
            )

        assert tables(first) == tables(second)

    def test_workers_flag_builds_process_engine(self):
        from repro.experiments.cli import make_engine

        serial = make_engine(None, None)
        assert serial.backend == "serial"
        pooled = make_engine(3, None)
        assert pooled.backend == "process" and pooled.workers == 3

    def test_subcommands_share_the_common_parent_flags(self):
        """Every experiments target accepts --quick/--workers/--cache-dir."""
        from repro.experiments.cli import build_parser

        parser = build_parser()
        for target in (
            "figure4",
            "figure5",
            "adaptive",
            "fleet",
            "layout-search",
            "serve",
            "all",
        ):
            arguments = parser.parse_args(
                [target, "--quick", "--workers", "2",
                 "--cache-dir", "/tmp/x"]
            )
            assert arguments.target == target
            assert arguments.quick is True
            assert arguments.workers == 2
            assert arguments.cache_dir == "/tmp/x"

    def test_serve_takes_bench_out(self, tmp_path):
        from repro.experiments.cli import build_parser

        arguments = build_parser().parse_args(
            ["serve", "--quick", "--bench-out",
             str(tmp_path / "bench.json")]
        )
        assert arguments.bench_out == str(tmp_path / "bench.json")


class TestUnifiedCLI:
    """The single ``repro`` entry point fronting every tool."""

    def test_trace_dispatch(self, tmp_path):
        from repro.cli import main as repro_main

        out = tmp_path / "t.din"
        code = repro_main(
            ["trace", "generate", str(out), "--count", "100"]
        )
        assert code == 0
        assert load_trace(out).access_count == 100

    def test_experiments_dispatch(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["experiments", "figure4", "--quick"]) == 0
        assert "all shape checks passed" in capsys.readouterr().out

    def test_serve_is_experiments_serve_shorthand(self):
        from repro.cli import build_parser

        arguments = build_parser().parse_args(["serve", "--quick"])
        assert arguments.command == "serve"
        assert arguments.rest == ["--quick"]

    def test_unknown_command_rejected(self):
        from repro.cli import main as repro_main

        with pytest.raises(SystemExit):
            repro_main(["compile"])

    def test_subtool_prog_names_mention_repro(self, capsys):
        from repro.cli import main as repro_main

        with pytest.raises(SystemExit):
            repro_main(["trace", "--help"])
        assert "repro trace" in capsys.readouterr().out

    def test_module_entry_point(self, tmp_path):
        import subprocess
        import sys

        out = tmp_path / "m.din"
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "trace", "generate",
             str(out), "--count", "50"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stderr
        assert load_trace(out).access_count == 50


class TestLegacyEntryPoints:
    """``python -m repro.trace`` / ``repro.experiments`` still work,
    but warn once that they are deprecated."""

    @pytest.mark.parametrize(
        "module,arguments",
        [
            ("repro.trace", ["--help"]),
            ("repro.experiments", ["--help"]),
        ],
    )
    def test_module_forms_warn_but_run(self, module, arguments):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-W", "always::DeprecationWarning",
             "-m", module, *arguments],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stderr
        assert "deprecated" in completed.stderr.lower()
        assert "repro " in completed.stderr  # points at the new form

    def test_legacy_console_mains_do_not_warn(self, recwarn, tmp_path):
        """Only the module forms are deprecated; the importable
        ``main`` functions (and the legacy console scripts bound to
        them) stay warning-free."""
        import warnings

        out = tmp_path / "t.din"
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert trace_main(
                ["generate", str(out), "--count", "10"]
            ) == 0

"""Unit tests for the phase-adaptive runtime subsystem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.algorithm import LayoutConfig
from repro.runtime import (
    AdaptiveConfig,
    AdaptiveExecutor,
    PhaseDetector,
    RepartitionPolicy,
    replay_reference,
)
from repro.runtime.detector import jaccard_distance, working_set_signature
from repro.sim.config import EMBEDDED_TIMING, TimingConfig
from repro.sim.executor import TraceExecutor
from repro.workloads.packet import PacketPipeline
from repro.workloads.transform import PhasedFFT

LAYOUT = LayoutConfig(
    columns=4, column_bytes=512, line_size=16, split_oversized=True
)


class TestSignatures:
    def test_identical_windows_distance_zero(self):
        first = working_set_signature([1, 2, 3, 100])
        second = working_set_signature([100, 3, 2, 1, 1])
        assert jaccard_distance(first, second) == 0.0

    def test_disjoint_windows_distance_one(self):
        first = working_set_signature([1, 2, 3])
        second = working_set_signature([1000, 2000, 3000])
        assert jaccard_distance(first, second) == 1.0

    def test_empty_signature(self):
        assert working_set_signature([]).sum() == 0
        assert jaccard_distance(
            working_set_signature([]), working_set_signature([])
        ) == 0.0

    @given(
        blocks=st.lists(st.integers(0, 10**12), max_size=50),
        bits=st.sampled_from([64, 256, 1024]),
    )
    @settings(max_examples=30)
    def test_signature_is_order_insensitive(self, blocks, bits):
        forward = working_set_signature(blocks, bits)
        backward = working_set_signature(list(reversed(blocks)), bits)
        assert np.array_equal(forward, backward)
        assert forward.sum() <= max(len(set(blocks)), 0)


class TestPhaseDetector:
    def test_first_window_is_never_a_boundary(self):
        detector = PhaseDetector()
        observation = detector.observe_window([1, 2, 3], misses=3)
        assert not observation.boundary

    def test_working_set_shift_fires(self):
        detector = PhaseDetector(signature_threshold=0.5)
        detector.observe_window([1, 2, 3, 4], misses=0)
        observation = detector.observe_window([50, 60, 70, 80], misses=0)
        assert observation.boundary
        assert detector.boundary_windows == [1]

    def test_stable_stream_never_fires(self):
        detector = PhaseDetector()
        for _ in range(10):
            observation = detector.observe_window(
                [1, 2, 3, 4], misses=1
            )
            assert not observation.boundary

    def test_miss_rate_jump_fires(self):
        detector = PhaseDetector(
            signature_threshold=0.99, miss_rate_threshold=0.2
        )
        detector.observe_window([1, 2, 3, 4], misses=0)
        observation = detector.observe_window([1, 2, 3, 4], misses=3)
        assert observation.miss_rate_delta == pytest.approx(0.75)
        assert observation.boundary

    def test_hysteresis_suppresses_refire(self):
        detector = PhaseDetector(
            signature_threshold=0.5, hysteresis_windows=3
        )
        detector.observe_window([1, 2, 3], misses=0)
        assert detector.observe_window([10, 11, 12], misses=0).boundary
        # Two more big shifts inside the hysteresis window: suppressed.
        assert not detector.observe_window([20, 21, 22], misses=0).boundary
        assert not detector.observe_window([30, 31, 32], misses=0).boundary
        # Outside the hysteresis window: fires again.
        assert detector.observe_window([40, 41, 42], misses=0).boundary

    def test_reset_forgets_history(self):
        detector = PhaseDetector()
        detector.observe_window([1, 2], misses=0)
        detector.reset()
        assert detector.observations == []
        assert not detector.observe_window([90, 91], misses=0).boundary

    def test_validation(self):
        with pytest.raises(ValueError, match="signature_threshold"):
            PhaseDetector(signature_threshold=0.0)
        with pytest.raises(ValueError, match="miss_rate_threshold"):
            PhaseDetector(miss_rate_threshold=-0.1)
        with pytest.raises(ValueError, match="hysteresis"):
            PhaseDetector(hysteresis_windows=0)


class TestRepartitionPolicy:
    def _run(self, **kwargs):
        return PacketPipeline(batches=1, rounds=1, seed=0, **kwargs).record()

    def test_initial_assignment_is_a_standard_cache(self):
        run = self._run()
        policy = RepartitionPolicy(config=LAYOUT, symbols=run.symbols)
        initial = policy.initial_assignment()
        assert initial.placements == {}
        assert initial.cache_mask.bits == 0b1111

    def test_first_replan_always_installs(self):
        run = self._run()
        policy = RepartitionPolicy(config=LAYOUT, symbols=run.symbols)
        decision = policy.replan(run.trace.slice(0, 512))
        assert decision.remapped
        assert decision.assignment.placements
        assert policy.current is decision.assignment

    def test_same_window_does_not_remap_again(self):
        run = self._run()
        policy = RepartitionPolicy(config=LAYOUT, symbols=run.symbols)
        policy.replan(run.trace.slice(0, 512))
        decision = policy.replan(run.trace.slice(0, 512))
        assert not decision.remapped
        assert decision.reuse_cost == decision.fresh_cost
        assert policy.remap_count == 1

    def test_new_variable_forces_remap(self):
        run = self._run()
        phases = {marker.label: marker for marker in run.phases}
        policy = RepartitionPolicy(config=LAYOUT, symbols=run.symbols)
        parse = phases["parse"]
        policy.replan(run.trace.slice(parse.start, parse.start + 512))
        emit = phases["emit"]  # brings police_tbl, unseen so far
        decision = policy.replan(
            run.trace.slice(emit.start, emit.start + 512)
        )
        assert decision.remapped
        assert decision.reuse_cost is None

    def test_remap_cost_prices_distinct_masks(self):
        run = self._run()
        timing = TimingConfig(remap_tint_cycles=5)
        policy = RepartitionPolicy(
            config=LAYOUT, symbols=run.symbols, timing=timing
        )
        decision = policy.replan(run.trace.slice(0, 512))
        distinct = {
            placement.mask.bits
            for placement in decision.assignment.placements.values()
        }
        assert decision.remap_cycles == len(distinct) * 5

    def test_rejects_scratchpad_layouts(self):
        run = self._run()
        config = LayoutConfig(
            columns=4, column_bytes=512, line_size=16,
            scratchpad_columns=1,
        )
        with pytest.raises(ValueError, match="cache columns only"):
            RepartitionPolicy(config=config, symbols=run.symbols)


class TestAdaptiveExecutor:
    def test_beats_standard_cache_on_rotating_phases(self):
        """The acceptance property: adaptive <= every static layout
        on the phase-heavy pipeline (standard cache included)."""
        run = PacketPipeline(batches=1, rounds=4, seed=0).record()
        executor = AdaptiveExecutor(
            LAYOUT,
            EMBEDDED_TIMING,
            AdaptiveConfig(window_accesses=2048, signature_threshold=0.15),
        )
        adaptive = executor.run(run)
        static = TraceExecutor(EMBEDDED_TIMING).run(
            run.trace, executor.make_policy(run).initial_assignment()
        )
        assert adaptive.result.cycles < static.cycles
        assert adaptive.remap_count >= 4  # one per stage at least

    def test_remap_events_land_on_window_edges(self):
        run = PacketPipeline(batches=1, rounds=2, seed=0).record()
        executor = AdaptiveExecutor(
            LAYOUT,
            EMBEDDED_TIMING,
            AdaptiveConfig(window_accesses=512, signature_threshold=0.15),
        )
        result = executor.run(run)
        assert result.events, "expected at least the initial remap"
        for event in result.events:
            assert event.position % 512 == 0
            assert 0 < event.position < len(run.trace)
        assert result.remap_cycles == sum(
            event.remap_cycles for event in result.events
        )

    def test_totals_are_consistent(self):
        run = PhasedFFT(n=128, transforms=1, seed=1).record()
        executor = AdaptiveExecutor(
            LAYOUT, EMBEDDED_TIMING, AdaptiveConfig(window_accesses=256)
        )
        result = executor.run(run).result
        assert result.accesses == len(run.trace)
        assert result.instructions == run.trace.instruction_count
        assert (
            result.hits + result.misses == result.cached_accesses
        )
        assert (
            result.cached_accesses + result.uncached_accesses
            == result.accesses
        )
        assert result.cycles >= result.instructions

    def test_stable_workload_remaps_once_then_holds(self):
        """The FFT's butterfly stages share one working set: after
        the initial installation the mapping must mostly hold."""
        run = PhasedFFT(n=256, transforms=2, seed=0).record()
        executor = AdaptiveExecutor(
            LAYOUT,
            EMBEDDED_TIMING,
            AdaptiveConfig(window_accesses=256, signature_threshold=0.15),
        )
        result = executor.run(run)
        windows = len(result.observations)
        assert result.remap_count <= max(windows // 4, 1)

    def test_window_size_validation(self):
        with pytest.raises(ValueError, match="window_accesses"):
            AdaptiveConfig(window_accesses=0)

    def test_replay_rejects_scratchpad(self):
        run = PhasedFFT(n=64, transforms=1).record()
        executor = AdaptiveExecutor(LAYOUT, EMBEDDED_TIMING)
        result = executor.run(run)
        bad = LayoutConfig(
            columns=4, column_bytes=512, line_size=16,
            scratchpad_columns=2,
        )
        with pytest.raises(ValueError, match="cache columns"):
            replay_reference(run, result, bad, EMBEDDED_TIMING)

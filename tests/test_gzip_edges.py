"""Edge-case tests for the gzip-like compressor."""

import numpy as np

from repro.workloads.gzip_like import (
    GzipLikeCompressor,
    decompress,
)


class _FixedInput(GzipLikeCompressor):
    """Compressor with caller-supplied input bytes."""

    def __init__(self, data: bytes, **kwargs):
        self._fixed = np.frombuffer(data, dtype=np.uint8).copy()
        super().__init__(input_bytes=len(data), **kwargs)

    def _generate_input(self, size: int) -> np.ndarray:
        return self._fixed


class TestGzipEdgeCases:
    def roundtrip(self, data: bytes, **kwargs) -> bytes:
        run = _FixedInput(data, **kwargs).record()
        return decompress(run.outputs["compressed"])

    def test_incompressible_input(self):
        rng = np.random.default_rng(0)
        data = bytes(bytearray(rng.integers(0, 256, 512).astype(np.uint8)))
        assert self.roundtrip(data) == data

    def test_all_same_byte(self):
        data = b"\x00" * 300
        assert self.roundtrip(data) == data

    def test_short_input(self):
        data = b"ab"
        assert self.roundtrip(data) == data

    def test_single_byte(self):
        assert self.roundtrip(b"x") == b"x"

    def test_exact_repeat_at_max_match(self):
        data = b"abcdefghijklmnopqr" * 8  # 18-byte period = MAX_MATCH
        assert self.roundtrip(data) == data

    def test_period_one_run_compresses_hard(self):
        from repro.workloads.gzip_like import DIST_SYMBOLS, LIT_SYMBOLS

        data = b"\x55" * 1024
        run = _FixedInput(data).record()
        header = LIT_SYMBOLS + DIST_SYMBOLS  # fixed code-length header
        payload = len(run.outputs["compressed"]) - header
        assert payload < len(data) // 8
        assert decompress(run.outputs["compressed"]) == data

    def test_binary_with_zero_bytes(self):
        data = bytes(range(256)) + b"\x00" * 64 + bytes(range(256))
        assert self.roundtrip(data) == data

    def test_small_window_still_correct(self):
        data = b"the cache the cache the cache " * 20
        assert self.roundtrip(data, window_bits=6, hash_bits=5,
                              max_chain=2) == data

    def test_max_chain_zero_means_literals_only(self):
        data = b"repeat repeat repeat"
        run = _FixedInput(data, max_chain=0).record()
        assert decompress(run.outputs["compressed"]) == data
        # Every token is a literal: token count equals input length + end.
        assert run.outputs["token_count"][0] == len(data)

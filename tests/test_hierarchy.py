"""Tests for the two-level column-cached hierarchy."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import (
    HierarchyTintTable,
    LevelMasks,
    TwoLevelCacheSystem,
)
from repro.utils.bitvector import ColumnMask


def build(l2_hit=6, memory=40, writeback=2):
    return TwoLevelCacheSystem(
        l1_geometry=CacheGeometry(line_size=16, sets=4, columns=2),
        l2_geometry=CacheGeometry(line_size=16, sets=16, columns=4),
        l2_hit_cycles=l2_hit,
        memory_cycles=memory,
        writeback_cycles=writeback,
    )


class TestTiming:
    def test_cold_miss_costs_full_path(self):
        system = build()
        outcome = system.access(0x1000)
        assert outcome.level == "memory"
        assert outcome.cycles == 1 + 6 + 40

    def test_l1_hit(self):
        system = build()
        system.access(0x1000)
        outcome = system.access(0x1000)
        assert outcome.level == "l1"
        assert outcome.cycles == 1

    def test_l2_hit_after_l1_eviction(self):
        system = build()
        system.access(0x0)
        # Evict from tiny L1 (2 ways x 4 sets): three same-set lines.
        system.access(0x40)
        system.access(0x80)
        assert not system.l1.contains(0x0)
        assert system.l2.contains(0x0)
        outcome = system.access(0x0)
        assert outcome.level == "l2"
        assert outcome.cycles == 1 + 6

    def test_cycle_accumulation(self):
        system = build()
        system.access(0x0)
        system.access(0x0)
        assert system.cycles == 47 + 1
        assert system.memory_fetches == 1


class TestWritebacks:
    def test_dirty_l1_victim_lands_in_l2(self):
        system = build()
        system.access(0x0, is_write=True)
        system.access(0x40)
        system.access(0x80)  # evicts dirty 0x0 into L2
        assert system.l2.contains(0x0)
        line = system.l2.find_line(0x0)
        assert line.dirty

    def test_l2_dirty_eviction_counts_memory_writeback(self):
        system = TwoLevelCacheSystem(
            l1_geometry=CacheGeometry(line_size=16, sets=1, columns=1),
            l2_geometry=CacheGeometry(line_size=16, sets=1, columns=1),
            writeback_cycles=3,
        )
        system.access(0x0, is_write=True)
        system.access(0x10, is_write=True)  # evicts 0x0 everywhere
        system.access(0x20, is_write=True)
        assert system.writebacks_to_memory >= 1


class TestPerLevelMasks:
    def test_masks_steer_both_levels(self):
        system = build()
        masks = LevelMasks(
            l1=ColumnMask.of(1, width=2), l2=ColumnMask.of(3, width=4)
        )
        system.access(0x1000, masks=masks)
        assert system.l1.find_line(0x1000).column == 1
        assert system.l2.find_line(0x1000).column == 3

    def test_l2_isolation_protects_working_set(self):
        """A streaming tint confined to one L2 column cannot evict
        another tint's L2-resident data."""
        system = build()
        hot = LevelMasks(
            l1=ColumnMask.of(0, width=2),
            l2=ColumnMask.of(0, 1, width=4),
        )
        stream = LevelMasks(
            l1=ColumnMask.of(1, width=2),
            l2=ColumnMask.of(3, width=4),
        )
        for line in range(8):
            system.access(0x0 + line * 16, masks=hot)
        for line in range(512):
            system.access(0x100000 + line * 16, masks=stream)
        for line in range(8):
            assert system.l2.contains(0x0 + line * 16)

    def test_empty_l2_mask_bypasses_l2(self):
        system = build()
        masks = LevelMasks(
            l1=ColumnMask.of(0, width=2), l2=ColumnMask.none(4)
        )
        system.access(0x1000, masks=masks)
        assert system.l1.contains(0x1000)
        assert not system.l2.contains(0x1000)


class TestHierarchyTints:
    def test_default_tint_full_masks(self):
        tints = HierarchyTintTable(l1_columns=2, l2_columns=4)
        masks = tints.masks_of("red")
        assert masks.l1.is_full() and masks.l2.is_full()

    def test_define_and_remap(self):
        tints = HierarchyTintTable(l1_columns=2, l2_columns=4)
        tints.define(
            "stream",
            LevelMasks(l1=ColumnMask.of(1, width=2),
                       l2=ColumnMask.of(3, width=4)),
        )
        tints.remap(
            "stream",
            LevelMasks(l1=ColumnMask.of(0, width=2),
                       l2=ColumnMask.of(2, width=4)),
        )
        assert tints.masks_of("stream").l2.columns() == (2,)

    def test_width_validation(self):
        tints = HierarchyTintTable(l1_columns=2, l2_columns=4)
        with pytest.raises(ValueError, match="L1 mask width"):
            tints.define(
                "bad", LevelMasks(l1=ColumnMask.of(0, width=4))
            )

    def test_duplicate_and_unknown(self):
        tints = HierarchyTintTable(l1_columns=2, l2_columns=4)
        with pytest.raises(ValueError):
            tints.define("red", LevelMasks())
        with pytest.raises(KeyError):
            tints.masks_of("nope")


class TestConstruction:
    def test_l2_smaller_than_l1_rejected(self):
        with pytest.raises(ValueError, match="at least as large"):
            TwoLevelCacheSystem(
                l1_geometry=CacheGeometry(line_size=16, sets=16, columns=4),
                l2_geometry=CacheGeometry(line_size=16, sets=4, columns=2),
            )

    def test_flush(self):
        system = build()
        system.access(0x0)
        system.flush()
        assert system.contains(0x0) == (False, False)

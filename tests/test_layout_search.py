"""The layout-search experiment and the `trace profile` CLI verb."""

from __future__ import annotations

import pytest

from repro.experiments.cli import main as experiments_main
from repro.experiments.layout_search import (
    LayoutSearchConfig,
    check_layout_search,
    run_layout_search,
)
from repro.sim.engine.scheduler import SweepEngine
from repro.trace.cli import main as trace_main


@pytest.fixture(scope="module")
def quick_result():
    """One quick backend race, shared by the assertions below."""
    config = LayoutSearchConfig().quick()
    return config, run_layout_search(
        config, SweepEngine(workers=1, backend="serial")
    )


class TestLayoutSearchExperiment:
    """The backend race runs, validates and reports correctly."""

    def test_all_shape_checks_pass(self, quick_result):
        """Quick race passes every shape check."""
        config, result = quick_result
        checks = check_layout_search(result, config)
        failed = [check.claim for check in checks if not check.passed]
        assert not failed, failed

    def test_every_pair_reported(self, quick_result):
        """One point exists per (workload, backend) pair."""
        config, result = quick_result
        for case in config.cases:
            for backend in config.backends:
                point = result.point(case.label, backend)
                assert point["cpi"] > 0
                assert point["validity_problems"] == []

    def test_series_has_w_and_cpi_per_backend(self, quick_result):
        """The rendered series carries W and CPI for every backend."""
        config, result = quick_result
        for backend in config.backends:
            assert f"{backend}_w" in result.series.series
            assert f"{backend}_cpi" in result.series.series

    def test_full_config_evolutionary_strictly_wins_somewhere(self):
        """At full size the GA strictly improves W on some workload.

        (idct is the known case: the paper's merge heuristic commits
        to an expensive contraction the global search avoids.)
        """
        config = LayoutSearchConfig()
        result = run_layout_search(config)
        strict = [
            workload
            for workload in {w for w, _ in result.points}
            if result.points[(workload, "evolutionary")][
                "predicted_cost"
            ]
            < result.points[(workload, "paper")]["predicted_cost"]
        ]
        assert strict, "expected the GA to beat paper W somewhere"
        checks = check_layout_search(result, config)
        assert all(check.passed for check in checks)

    def test_custom_backend_subset_checks_do_not_crash(self):
        """Checks stay well-defined without the evolutionary backend."""
        import dataclasses

        from repro.experiments.layout_search import SearchCase

        config = dataclasses.replace(
            LayoutSearchConfig().quick(),
            cases=(SearchCase("dequant"),),
            backends=("paper", "beam"),
        )
        result = run_layout_search(config)
        checks = check_layout_search(result, config)
        assert checks  # validity check still present
        assert all(check.passed for check in checks)

    def test_same_workload_different_kwargs_keeps_both_points(self):
        """Duplicate workloads with distinct kwargs do not collide."""
        import dataclasses

        from repro.experiments.layout_search import SearchCase

        config = dataclasses.replace(
            LayoutSearchConfig().quick(),
            cases=(
                SearchCase("scan", (("buffer_bytes", 2048),)),
                SearchCase("scan", (("buffer_bytes", 4096),)),
            ),
            backends=("paper",),
        )
        result = run_layout_search(config)
        labels = {label for label, _ in result.points}
        assert labels == {
            "scan[buffer_bytes=2048]",
            "scan[buffer_bytes=4096]",
        }
        assert len(result.series.x_values) == 2

    def test_cli_target_runs_quick(self, capsys):
        """`experiments layout-search --quick` exits 0 and reports."""
        code = experiments_main(["layout-search", "--quick"])
        output = capsys.readouterr().out
        assert code == 0
        assert "layout-search" in output
        assert "evolutionary_cpi" in output


class TestTraceProfileCli:
    """`trace profile` dumps a per-variable planner-facing table."""

    def test_profile_of_recorded_npz(self, tmp_path, capsys):
        """Record a workload, profile the archive, check the table."""
        out = tmp_path / "dequant.npz"
        assert trace_main(["record", "dequant", str(out)]) == 0
        capsys.readouterr()
        assert trace_main(["profile", str(out)]) == 0
        output = capsys.readouterr().out
        assert "density" in output
        assert "coeffs" in output
        assert "lifetime" in output

    def test_profile_reports_unattributed(self, tmp_path, capsys):
        """Unlabelled accesses are reported, not silently dropped."""
        from repro.trace.columnar import ColumnarTrace

        trace = ColumnarTrace.from_columns(
            [0x100, 0x104, 0x200], name="anon"
        )
        path = trace.save_npz(tmp_path / "anon.npz")
        assert trace_main(["profile", str(path)]) == 0
        output = capsys.readouterr().out
        assert "unattributed: 3 accesses" in output

"""Tests for the baseline architectures."""

import pytest

from repro.baselines.page_coloring import PageColoringBaseline
from repro.baselines.panda import PandaBaseline
from repro.baselines.static_partition import (
    best_partition,
    sweep_static_partitions,
)
from repro.cache.geometry import CacheGeometry
from repro.sim.config import TimingConfig
from repro.workloads.base import Workload
from repro.workloads.mpeg import DequantRoutine

TIMING = TimingConfig(miss_penalty=10, uncached_penalty=10)


class _HotAndStream(Workload):
    """A hot table fighting a large stream — classic conflict case."""

    def __init__(self, **kwargs):
        super().__init__(name="hot_and_stream", **kwargs)
        self.table = self.array("table", 64)
        self.stream = self.array("stream", 2048)

    def run(self) -> None:
        self.begin_phase("main")
        for index in range(2048):
            _ = self.stream[index]
            _ = self.table[index % 64]
        self.end_phase()


class TestStaticPartitionSweep:
    def test_sweep_covers_all_partitions(self):
        run = DequantRoutine(blocks=4).record()
        points = sweep_static_partitions(
            run, columns=4, column_bytes=512, timing=TIMING
        )
        assert [p.cache_columns for p in points] == [0, 1, 2, 3, 4]
        assert all(p.cycles > 0 for p in points)

    def test_best_partition(self):
        run = DequantRoutine(blocks=4).record()
        points = sweep_static_partitions(
            run, columns=4, column_bytes=512, timing=TIMING
        )
        best = best_partition(points)
        assert best.cycles == min(p.cycles for p in points)

    def test_best_of_empty_rejected(self):
        with pytest.raises(ValueError):
            best_partition([])


class TestPandaBaseline:
    def geometry(self):
        return CacheGeometry(line_size=16, sets=16, columns=2)  # 512B

    def test_plan_picks_dense_variables(self):
        run = _HotAndStream().record()
        baseline = PandaBaseline(
            scratchpad_bytes=256, cache_geometry=self.geometry(),
            timing=TIMING,
        )
        plan = baseline.plan(run)
        assert "table" in plan.scratchpad_variables
        assert "stream" not in plan.scratchpad_variables  # too big

    def test_copy_cost_charged(self):
        run = _HotAndStream().record()
        baseline = PandaBaseline(
            scratchpad_bytes=256, cache_geometry=self.geometry(),
            timing=TIMING, copy_byte_cycles=2,
        )
        plan = baseline.plan(run)
        result = baseline.run(run, plan)
        assert result.setup_cycles == plan.scratchpad_bytes * 2

    def test_scratchpad_improves_over_no_scratchpad(self):
        run = _HotAndStream().record()
        with_pad = PandaBaseline(
            scratchpad_bytes=256, cache_geometry=self.geometry(),
            timing=TIMING,
        ).run(run)
        without_pad = PandaBaseline(
            scratchpad_bytes=1, cache_geometry=self.geometry(),
            timing=TIMING,
        ).run(run)
        assert with_pad.cycles < without_pad.cycles

    def test_accounting(self):
        run = _HotAndStream().record()
        result = PandaBaseline(
            scratchpad_bytes=256, cache_geometry=self.geometry(),
            timing=TIMING,
        ).run(run)
        assert result.accesses == len(run.trace)
        assert (
            result.scratchpad_accesses + result.cached_accesses
            == result.accesses
        )


class TestPageColoring:
    def geometry(self):
        # Direct-mapped 1 KB: 64 sets x 16 B, 1 way.
        return CacheGeometry(line_size=16, sets=64, columns=1)

    def test_colors_count(self):
        baseline = PageColoringBaseline(
            self.geometry(), page_size=64, timing=TIMING
        )
        assert baseline.page_colors == 16

    def test_page_size_larger_than_way_rejected(self):
        with pytest.raises(ValueError, match="no colors"):
            PageColoringBaseline(
                CacheGeometry(line_size=16, sets=2, columns=1),
                page_size=64,
            )

    def test_translation_preserves_offsets(self):
        import numpy as np

        run = _HotAndStream().record()
        baseline = PageColoringBaseline(
            self.geometry(), page_size=64, timing=TIMING
        )
        plan = baseline.plan(run)
        physical = baseline.translate(run.trace.addresses, plan)
        assert ((physical & 63) == (run.trace.addresses & 63)).all()

    def test_distinct_variables_distinct_frames(self):
        run = _HotAndStream().record()
        baseline = PageColoringBaseline(
            self.geometry(), page_size=64, timing=TIMING
        )
        plan = baseline.plan(run)
        frames = list(plan.page_map.values())
        assert len(frames) == len(set(frames))

    def test_coloring_reduces_conflict_misses(self):
        """On a direct-mapped cache, coloring the hot table away from
        the stream removes the conflict misses."""
        run = _HotAndStream().record()
        baseline = PageColoringBaseline(
            self.geometry(), page_size=64, timing=TIMING
        )
        colored = baseline.run(run)
        uncolored = baseline.run_uncolored(run)
        assert colored.misses < uncolored.misses

    def test_initial_copies_charged_when_requested(self):
        run = _HotAndStream().record()
        baseline = PageColoringBaseline(
            self.geometry(), page_size=64, timing=TIMING,
            copy_byte_cycles=1,
        )
        plan = baseline.plan(run)
        charged = baseline.run(run, plan, charge_initial_copies=True)
        free = baseline.run(run, plan)
        assert charged.setup_cycles > 0
        assert free.setup_cycles == 0

"""Property test: fast and reference executors agree on random workloads.

This is the strongest cross-validation in the suite: random variable
sets, random interleaved traces, random scratchpad/cache splits — the
vectorized fast path and the full TLB/tint/replacement mechanism must
produce identical cycle counts and miss totals.  The sweep engine's
batched paths (lockstep kernel and set sharding) join the same
triangle: on the cached access stream every planner assignment
produces, all cache models must agree bit-for-bit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.fastsim import FastColumnCache
from repro.layout.algorithm import DataLayoutPlanner, LayoutConfig
from repro.sim.config import TimingConfig
from repro.sim.engine.batched import batched_simulate
from repro.sim.engine.sharded import simulate_trace_sharded
from repro.sim.executor import TraceExecutor

from strategies import random_workload

TIMING = TimingConfig(miss_penalty=13, uncached_penalty=29,
                      preload_line_cycles=7)


@given(workload=random_workload())
@settings(max_examples=40, deadline=None)
def test_fast_matches_reference_on_random_workloads(workload):
    run, scratchpad, split = workload
    config = LayoutConfig(
        columns=4,
        column_bytes=512,
        scratchpad_columns=scratchpad,
        split_oversized=split,
    )
    assignment = DataLayoutPlanner(config).plan(run)
    executor = TraceExecutor(TIMING)
    fast = executor.run(run.trace, assignment)
    reference = executor.run_reference(run.trace, assignment)
    assert fast.cycles == reference.cycles
    assert fast.hits == reference.hits
    assert fast.misses == reference.misses
    assert fast.uncached_accesses == reference.uncached_accesses
    assert fast.scratchpad_accesses == reference.scratchpad_accesses
    assert fast.setup_cycles == reference.setup_cycles


@given(
    workload=random_workload(),
    shards=st.integers(1, 3),
    cutoff=st.sampled_from([0, 2, 10_000]),
)
@settings(max_examples=40, deadline=None)
def test_sharded_and_lockstep_match_scalar_on_planner_masks(
    workload, shards, cutoff
):
    """The engine's batched paths on real planner-produced masks.

    Extracts the cached access stream exactly as the fast executor
    does, then runs it through the scalar cache, the set-sharded
    runner and the lockstep kernel: hit/miss/bypass counts must be
    bit-identical for every random layout.
    """
    run, scratchpad, split = workload
    config = LayoutConfig(
        columns=4,
        column_bytes=512,
        scratchpad_columns=scratchpad,
        split_oversized=split,
    )
    assignment = DataLayoutPlanner(config).plan(run)
    executor = TraceExecutor(TIMING)
    geometry = executor.geometry_for(assignment)
    codes, bits = executor.classify(run.trace, assignment)
    cached = np.flatnonzero(codes == 0)
    blocks = run.trace.addresses[cached] >> geometry.offset_bits
    masks = bits[cached]

    scalar = FastColumnCache(geometry).run(
        blocks.tolist(), mask_bits=masks.tolist()
    )
    sharded = simulate_trace_sharded(
        blocks, geometry, mask_bits=masks, workers=1, shards=shards
    )
    lockstep = batched_simulate(
        blocks, geometry, mask_bits=masks, scalar_cutoff=cutoff
    )
    for other in (sharded, lockstep):
        assert other.hits == scalar.hits
        assert other.misses == scalar.misses
        assert other.bypasses == scalar.bypasses

"""Tests for cache geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry


class TestGeometry:
    def test_figure4_configuration(self):
        g = CacheGeometry(line_size=16, sets=32, columns=4)
        assert g.total_bytes == 2048
        assert g.column_bytes == 512
        assert g.total_lines == 128

    def test_from_sizes(self):
        g = CacheGeometry.from_sizes(16 * 1024, line_size=16, columns=8)
        assert g.sets == 128
        assert g.total_bytes == 16 * 1024

    def test_from_sizes_indivisible_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry.from_sizes(2048, line_size=16, columns=3)

    def test_invalid_line_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(line_size=10, sets=4, columns=2)

    def test_invalid_columns(self):
        with pytest.raises(ValueError):
            CacheGeometry(line_size=16, sets=4, columns=0)

    def test_columns_need_not_be_power_of_two(self):
        g = CacheGeometry(line_size=16, sets=4, columns=3)
        assert g.total_bytes == 192

    def test_address_decomposition(self):
        g = CacheGeometry(line_size=16, sets=32, columns=4)
        address = 0x1234
        assert g.line_address(address) == 0x1230
        assert g.set_index(address) == (0x1234 >> 4) & 31
        assert g.tag(address) == 0x1234 >> 9

    def test_address_of_round_trip(self):
        g = CacheGeometry(line_size=16, sets=32, columns=4)
        address = 0xABC0
        assert g.address_of(g.tag(address), g.set_index(address)) == address

    def test_address_of_bad_set(self):
        g = CacheGeometry(line_size=16, sets=4, columns=2)
        with pytest.raises(ValueError):
            g.address_of(0, 4)

    def test_with_columns(self):
        g = CacheGeometry(line_size=16, sets=32, columns=4)
        assert g.with_columns(8).total_bytes == 4096

    def test_block_number(self):
        g = CacheGeometry(line_size=16, sets=4, columns=2)
        assert g.block_number(0x45) == 4


@given(
    address=st.integers(0, 2**32 - 1),
    line_bits=st.integers(4, 7),
    set_bits=st.integers(1, 8),
)
def test_decomposition_reconstructs_line_address(address, line_bits, set_bits):
    g = CacheGeometry(
        line_size=1 << line_bits, sets=1 << set_bits, columns=2
    )
    rebuilt = g.address_of(g.tag(address), g.set_index(address))
    assert rebuilt == g.line_address(address)

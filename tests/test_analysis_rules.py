"""Per-rule positive/negative fixtures for ``repro.analysis``.

Each rule gets at least one fixture that must trigger it and one
near-miss that must stay silent; the suppression and baseline
machinery is exercised on top of real findings.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.engine import analyze_module
from repro.analysis.findings import (
    Finding,
    load_baseline,
    partition_baseline,
    write_baseline,
)
from repro.analysis.rules import default_rules
from repro.analysis.rules.cache_key import CacheKeyCompleteness
from repro.analysis.rules.determinism import Determinism
from repro.analysis.rules.env_pinning import EnvPinning
from repro.analysis.rules.interleaving import AwaitInterleaving

SIM_PATH = "src/repro/sim/engine/fixture.py"
FLEET_PATH = "src/repro/fleet/service/fixture.py"
NEUTRAL_PATH = "src/repro/trace/fixture.py"


def run(source: str, relpath: str = SIM_PATH, rules=None):
    """Analyze dedented fixture source; returns (findings, count)."""
    findings, suppressed = analyze_module(
        textwrap.dedent(source),
        relpath,
        rules if rules is not None else default_rules(),
    )
    return findings, suppressed


def rules_of(findings) -> list[str]:
    """The rule ids of a findings list, in order."""
    return [finding.rule for finding in findings]


# ----------------------------------------------------------------------
# R001: determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    """Unseeded RNG, wall-clock reads, set iteration."""

    def test_global_random_call_flagged(self):
        """Module-level random.* draws global state."""
        findings, _ = run(
            """
            import random

            def pick(items):
                return random.choice(items)
            """
        )
        assert rules_of(findings) == ["R001"]
        assert "random.choice" in findings[0].message

    def test_seeded_random_instance_clean(self):
        """A seeded Random instance is the sanctioned pattern."""
        findings, _ = run(
            """
            import random

            def pick(items, seed):
                rng = random.Random(seed)
                return rng.choice(items)
            """
        )
        assert findings == []

    def test_numpy_global_rng_flagged_and_default_rng_clean(self):
        """Legacy np.random.* is flagged; default_rng is the fix."""
        findings, _ = run(
            """
            import numpy as np

            def bad(values):
                np.random.shuffle(values)

            def good(values, seed):
                return np.random.default_rng(seed).permutation(values)
            """
        )
        assert rules_of(findings) == ["R001"]
        assert "numpy.random.shuffle" in findings[0].message

    def test_wall_clock_flagged_in_sim_path_only(self):
        """perf_counter is banned under sim/, legal elsewhere."""
        source = """
            import time

            def stamp():
                return time.perf_counter()
            """
        flagged, _ = run(source, relpath=SIM_PATH)
        clean, _ = run(source, relpath=NEUTRAL_PATH)
        assert rules_of(flagged) == ["R001"]
        assert "wall-clock" in flagged[0].message
        assert clean == []

    def test_datetime_now_flagged_in_fleet_path(self):
        """datetime.now() reads the host clock."""
        findings, _ = run(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            relpath=FLEET_PATH,
        )
        assert rules_of(findings) == ["R001"]

    def test_set_iteration_flagged(self):
        """for-over-set and set comprehensions order by hash seed."""
        findings, _ = run(
            """
            def merge(shards):
                out = []
                for shard in set(shards):
                    out.append(shard)
                return [item for item in {1, 2, 3}] + out
            """,
            relpath=NEUTRAL_PATH,
        )
        assert rules_of(findings) == ["R001", "R001"]

    def test_sorted_set_iteration_clean(self):
        """sorted(...) around the set restores a stable order."""
        findings, _ = run(
            """
            def merge(shards):
                return [shard for shard in sorted(set(shards))]
            """,
            relpath=NEUTRAL_PATH,
        )
        assert findings == []


# ----------------------------------------------------------------------
# R002: cache-key completeness
# ----------------------------------------------------------------------
class TestCacheKey:
    """Every dataclass field must flow into content_hash()."""

    def test_missing_field_flagged(self):
        """A field absent from content_hash names itself."""
        findings, _ = run(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Job:
                runner: str
                kernel: str

                def content_hash(self):
                    return hash(self.runner)
            """,
            rules=[CacheKeyCompleteness()],
        )
        assert rules_of(findings) == ["R002"]
        assert "'kernel'" in findings[0].message

    def test_complete_hash_clean(self):
        """All fields referenced: nothing to report."""
        findings, _ = run(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Job:
                runner: str
                kernel: str

                def content_hash(self):
                    return hash((self.runner, self.kernel))
            """,
            rules=[CacheKeyCompleteness()],
        )
        assert findings == []

    def test_class_without_content_hash_ignored(self):
        """Only classes that define the contract are audited."""
        findings, _ = run(
            """
            from dataclasses import dataclass

            @dataclass
            class Plain:
                value: int
            """,
            rules=[CacheKeyCompleteness()],
        )
        assert findings == []

    def test_classvar_fields_skipped(self):
        """ClassVar declarations are not dataclass fields."""
        findings, _ = run(
            """
            from dataclasses import dataclass
            from typing import ClassVar

            @dataclass
            class Job:
                VERSION: ClassVar[int] = 2
                runner: str

                def content_hash(self):
                    return hash(self.runner)
            """,
            rules=[CacheKeyCompleteness()],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R004: await interleaving
# ----------------------------------------------------------------------
class TestAwaitInterleaving:
    """Read -> await -> write without re-validation."""

    def test_stale_write_after_await_flagged(self):
        """The daemon-stop shape: gather over state, then clear it."""
        findings, _ = run(
            """
            import asyncio

            async def stop(self):
                await asyncio.gather(*self._tasks)
                self._tasks = []
            """,
            relpath=FLEET_PATH,
            rules=[AwaitInterleaving()],
        )
        assert rules_of(findings) == ["R004"]
        assert "'self._tasks'" in findings[0].message

    def test_detach_then_await_clean(self):
        """Detaching before the await removes the stale window."""
        findings, _ = run(
            """
            import asyncio

            async def stop(self):
                tasks, self._tasks = self._tasks, []
                await asyncio.gather(*tasks)
            """,
            relpath=FLEET_PATH,
            rules=[AwaitInterleaving()],
        )
        assert findings == []

    def test_revalidation_after_await_clean(self):
        """Re-reading the chain after the await is the fix pattern."""
        findings, _ = run(
            """
            import asyncio

            async def drain(self):
                backlog = len(self._pending)
                await asyncio.sleep(0)
                if self._pending:
                    self._pending = []
                return backlog
            """,
            relpath=FLEET_PATH,
            rules=[AwaitInterleaving()],
        )
        assert findings == []

    def test_mutating_method_counts_as_write(self):
        """``.clear()`` after an await is as stale as assignment."""
        findings, _ = run(
            """
            import asyncio

            async def flush(self):
                count = len(self._queue)
                await asyncio.sleep(0)
                self._queue.clear()
                return count
            """,
            relpath=FLEET_PATH,
            rules=[AwaitInterleaving()],
        )
        assert rules_of(findings) == ["R004"]

    def test_rule_scoped_to_fleet_service_paths(self):
        """The same shape outside fleet/service/ is out of scope."""
        findings, _ = run(
            """
            import asyncio

            async def stop(self):
                await asyncio.gather(*self._tasks)
                self._tasks = []
            """,
            relpath=SIM_PATH,
            rules=[AwaitInterleaving()],
        )
        assert findings == []

    def test_loop_top_reread_is_revalidation(self):
        """Await at loop bottom + re-read at loop top stays clean."""
        findings, _ = run(
            """
            import asyncio

            async def worker(self):
                while True:
                    if not self._running:
                        break
                    self._served += 1
                    await asyncio.sleep(0)
            """,
            relpath=FLEET_PATH,
            rules=[AwaitInterleaving()],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R005: env pinning
# ----------------------------------------------------------------------
class TestEnvPinning:
    """ProcessPoolExecutor spawn sites must pin worker env."""

    def test_unpinned_pool_flagged(self):
        """No environ assignment before the spawn: flagged."""
        findings, _ = run(
            """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(jobs):
                with ProcessPoolExecutor(max_workers=4) as pool:
                    return list(pool.map(len, jobs))
            """,
            rules=[EnvPinning()],
        )
        assert rules_of(findings) == ["R005"]
        assert "REPRO_KERNEL" in findings[0].message

    def test_kernel_env_attribute_pin_clean(self):
        """Pinning via backends.KERNEL_ENV satisfies the rule."""
        findings, _ = run(
            """
            import os
            from concurrent.futures import ProcessPoolExecutor
            from repro.sim.engine import backends

            def fan_out(jobs):
                os.environ[backends.KERNEL_ENV] = backends.active_backend()
                with ProcessPoolExecutor(max_workers=4) as pool:
                    return list(pool.map(len, jobs))
            """,
            rules=[EnvPinning()],
        )
        assert findings == []

    def test_literal_key_pin_clean(self):
        """A literal REPRO_KERNEL assignment also counts."""
        findings, _ = run(
            """
            import os
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(jobs, kernel):
                os.environ["REPRO_KERNEL"] = kernel
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(len, jobs))
            """,
            rules=[EnvPinning()],
        )
        assert findings == []

    def test_thread_pool_not_flagged(self):
        """Thread pools share the parent process: out of scope."""
        findings, _ = run(
            """
            from concurrent.futures import ThreadPoolExecutor

            def fan_out(jobs):
                with ThreadPoolExecutor() as pool:
                    return list(pool.map(len, jobs))
            """,
            rules=[EnvPinning()],
        )
        assert findings == []


# ----------------------------------------------------------------------
# Suppressions and baseline
# ----------------------------------------------------------------------
class TestSuppressions:
    """Inline ``# repro: ignore[RULE]`` semantics."""

    def test_same_line_suppression(self):
        """A trailing comment silences that line's finding."""
        findings, suppressed = run(
            """
            import random

            def pick(items):
                return random.choice(items)  # repro: ignore[R001] -- fixture
            """
        )
        assert findings == []
        assert suppressed == 1

    def test_standalone_suppression_covers_next_line(self):
        """A comment on its own line covers the line below."""
        findings, suppressed = run(
            """
            import random

            def pick(items):
                # repro: ignore[R001] -- fixture
                return random.choice(items)
            """
        )
        assert findings == []
        assert suppressed == 1

    def test_wrong_rule_does_not_suppress(self):
        """Suppressing R002 does not hide an R001 finding."""
        findings, suppressed = run(
            """
            import random

            def pick(items):
                return random.choice(items)  # repro: ignore[R002] -- wrong rule
            """
        )
        assert rules_of(findings) == ["R001"]
        assert suppressed == 0

    def test_multi_rule_suppression(self):
        """``ignore[R001, R002]`` silences both rules on the line."""
        findings, suppressed = run(
            """
            import random

            def pick(items):
                return random.choice(items)  # repro: ignore[R001, R002] -- fixture
            """
        )
        assert findings == []
        assert suppressed == 1


class TestBaseline:
    """Fingerprint-matched grandfathering."""

    def test_round_trip_and_partition(self, tmp_path: Path):
        """Write, reload, and split new vs grandfathered."""
        old = Finding(
            rule="R001", path="src/a.py", line=10, column=1,
            message="call to random.choice() draws ...",
        )
        new = Finding(
            rule="R005", path="src/b.py", line=3, column=1,
            message="ProcessPoolExecutor spawned without ...",
        )
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, [old])
        baseline = load_baseline(baseline_path)
        fresh, grandfathered = partition_baseline([old, new], baseline)
        assert fresh == [new]
        assert grandfathered == [old]

    def test_fingerprint_survives_line_moves(self):
        """The fingerprint hashes content, not position."""
        here = Finding(
            rule="R001", path="src/a.py", line=10, column=1,
            message="same message",
        )
        moved = Finding(
            rule="R001", path="src/a.py", line=99, column=5,
            message="same message",
        )
        assert here.fingerprint() == moved.fingerprint()

    def test_missing_baseline_is_empty(self, tmp_path: Path):
        """No file means no grandfathered findings."""
        assert load_baseline(tmp_path / "absent.json") == {}

"""The closed-form multitask schedule vs a step-by-step rebuild.

``repro.sim.engine.multitask_batch`` computes where every round-robin
quantum starts and stops in closed form (vectorized successor tables +
orbit tiling).  These property tests rebuild the schedule the way the
scalar :class:`~repro.sim.multitask.MultitaskSimulator` walks it — one
quantum at a time, one searchsorted per step, honoring the atomic
overshoot of the final access — and assert the closed form matches
*entry by entry*: same job order, same start positions, same access
counts, same instructions executed, same wrap counts, for random
quantum and trace lengths.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.sim.engine.multitask_batch import _BatchJob, _Schedule
from repro.sim.multitask import Job
from repro.trace.trace import TraceBuilder

GEOMETRY = CacheGeometry(line_size=16, sets=4, columns=2)


def build_trace(rng, length, name):
    builder = TraceBuilder(name=name)
    for _ in range(length):
        builder.add_gap(int(rng.integers(0, 6)))
        builder.append(int(rng.integers(0, 1024)) * 2)
    return builder.build()


def scalar_schedule(cumulatives, quantum, budget):
    """Step-by-step round-robin schedule, mirroring the simulator.

    Returns a list of (job, start_position, accesses, ran, wraps)
    entries in execution order.
    """
    positions = [0] * len(cumulatives)
    entries = []
    executed = 0
    job = 0
    while executed < budget:
        cumulative = cumulatives[job]
        n = len(cumulative)
        start = position = positions[job]
        remaining = quantum
        accesses = 0
        ran_total = 0
        wraps = 0
        while remaining > 0:
            done_before = (
                int(cumulative[position - 1]) if position > 0 else 0
            )
            target = done_before + remaining
            stop = int(np.searchsorted(cumulative, target, side="right"))
            if stop == position:
                stop = position + 1  # atomic access: make progress
            stop = min(stop, n)
            ran = int(cumulative[stop - 1]) - done_before
            accesses += stop - position
            ran_total += ran
            remaining -= ran
            position = stop
            if position >= n:
                position = 0
                wraps += 1
        positions[job] = position
        entries.append((job, start, accesses, ran_total, wraps))
        executed += ran_total
        job = (job + 1) % len(cumulatives)
    return entries


@st.composite
def schedule_case(draw):
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    job_count = draw(st.integers(1, 3))
    jobs = [
        Job(
            name=f"job{index}",
            trace=build_trace(
                rng, draw(st.integers(1, 60)), f"job{index}"
            ),
            address_offset=index << 20,
        )
        for index in range(job_count)
    ]
    quantum = draw(
        st.integers(1, 50) | st.sampled_from([997, 10_000, 10**6])
    )
    budget = draw(st.integers(1, 5000))
    return jobs, quantum, budget


@given(case=schedule_case())
@settings(deadline=None)
def test_closed_form_schedule_matches_scalar_walk(case):
    jobs, quantum, budget = case
    batch_jobs = [_BatchJob(job, GEOMETRY) for job in jobs]
    schedule = _Schedule(batch_jobs, quantum, budget)
    expected = scalar_schedule(
        [batch_job.cum for batch_job in batch_jobs], quantum, budget
    )
    assert len(schedule.job_ids) == len(expected)
    for index, (job, start, accesses, ran, wraps) in enumerate(expected):
        assert int(schedule.job_ids[index]) == job, index
        assert int(schedule.positions[index]) == start, index
        assert int(schedule.accesses[index]) == accesses, index
        assert int(schedule.ran[index]) == ran, index
        assert int(schedule.wraps[index]) == wraps, index
    assert schedule.total_accesses == sum(
        entry[2] for entry in expected
    )


@given(case=schedule_case())
@settings(deadline=None)
def test_access_stream_walks_each_trace_in_order(case):
    """The materialized stream is each quantum's trace slice, wrapped."""
    jobs, quantum, budget = case
    batch_jobs = [_BatchJob(job, GEOMETRY) for job in jobs]
    schedule = _Schedule(batch_jobs, quantum, budget)
    stream_blocks, stream_jobs = schedule.access_stream(batch_jobs)
    cursor = 0
    for index in range(len(schedule.job_ids)):
        job = int(schedule.job_ids[index])
        start = int(schedule.positions[index])
        count = int(schedule.accesses[index])
        trace_blocks = batch_jobs[job].blocks
        expected = [
            trace_blocks[(start + offset) % len(trace_blocks)]
            for offset in range(count)
        ]
        got = stream_blocks[cursor:cursor + count]
        assert got.tolist() == expected, index
        assert (stream_jobs[cursor:cursor + count] == job).all()
        cursor += count
    assert cursor == len(stream_blocks)

"""Tests for the profiler, conflict weights and static analysis."""

import numpy as np
import pytest

from repro.mem.address import AddressRange
from repro.mem.symbols import SymbolTable, Variable, VariableKind
from repro.profiling.conflict import pairwise_weights
from repro.profiling.ir import access, branch, compute, loop
from repro.profiling.lifetime import lifetimes_disjoint, variable_lifetimes
from repro.profiling.profiler import Profile, profile_trace
from repro.profiling.static_analysis import analyze_program
from repro.trace.trace import TraceBuilder
from repro.utils.intervals import Interval


def interleaved_trace():
    """a a b a b b c c — canonical lifetimes fixture."""
    builder = TraceBuilder()
    pattern = ["a", "a", "b", "a", "b", "b", "c", "c"]
    bases = {"a": 0x100, "b": 0x200, "c": 0x300}
    cursor = {"a": 0, "b": 0, "c": 0}
    for name in pattern:
        builder.append(bases[name] + cursor[name] * 2, variable=name)
        cursor[name] += 1
    return builder.build()


class TestLifetimes:
    def test_intervals(self):
        lifetimes = variable_lifetimes(interleaved_trace())
        assert lifetimes["a"] == Interval(0, 4)
        assert lifetimes["b"] == Interval(2, 6)
        assert lifetimes["c"] == Interval(6, 8)

    def test_disjoint(self):
        lifetimes = variable_lifetimes(interleaved_trace())
        assert lifetimes_disjoint(lifetimes["a"], lifetimes["c"])
        assert not lifetimes_disjoint(lifetimes["a"], lifetimes["b"])


class TestProfiler:
    def test_counts_and_lifetime(self):
        profile = profile_trace(interleaved_trace())
        a = profile.variables["a"]
        assert a.access_count == 3
        assert a.lifetime == Interval(0, 4)
        assert a.read_count == 3 and a.write_count == 0

    def test_write_counts(self):
        builder = TraceBuilder()
        builder.append(0, is_write=True, variable="x")
        builder.append(2, is_write=False, variable="x")
        profile = profile_trace(builder.build())
        x = profile.variables["x"]
        assert x.write_count == 1 and x.read_count == 1

    def test_sizes_from_symbols(self):
        table = SymbolTable()
        table.add(Variable("a", AddressRange(0x100, 64), element_size=2))
        builder = TraceBuilder()
        builder.append(0x100, variable="a")
        profile = profile_trace(builder.build(), table)
        assert profile.variables["a"].size == 64

    def test_by_address_attribution(self):
        table = SymbolTable()
        table.add(Variable("lo", AddressRange(0x100, 16)))
        table.add(Variable("hi", AddressRange(0x200, 16)))
        builder = TraceBuilder()
        builder.append(0x104, variable="whatever")
        builder.append(0x20A, variable="whatever")
        builder.append(0x900)  # outside everything
        profile = profile_trace(builder.build(), table, by_address=True)
        assert profile.variables["lo"].access_count == 1
        assert profile.variables["hi"].access_count == 1
        assert "whatever" not in profile.variables

    def test_by_address_requires_symbols(self):
        with pytest.raises(ValueError):
            profile_trace(interleaved_trace(), by_address=True)

    def test_by_address_with_subarrays(self):
        """Attribution against split units — what the planner does."""
        parent = Variable("big", AddressRange(0x0, 64), element_size=2)
        table = SymbolTable()
        for piece in parent.split(32):
            table.add(piece)
        builder = TraceBuilder()
        builder.append(0x00, variable="big")
        builder.append(0x20, variable="big")
        builder.append(0x3E, variable="big")
        profile = profile_trace(builder.build(), table, by_address=True)
        assert profile.variables["big#0"].access_count == 1
        assert profile.variables["big#1"].access_count == 2

    def test_density(self):
        table = SymbolTable()
        table.add(Variable("a", AddressRange(0, 16)))
        builder = TraceBuilder()
        for _ in range(32):
            builder.append(0, variable="a")
        profile = profile_trace(builder.build(), table)
        assert profile.variables["a"].density == 2.0

    def test_heavily_accessed_ordering(self):
        profile = profile_trace(interleaved_trace())
        names = [v.name for v in profile.heavily_accessed(2)]
        assert names[0] in ("a", "b")
        assert len(names) == 2

    def test_accesses_in(self):
        profile = profile_trace(interleaved_trace())
        a = profile.variables["a"]
        assert a.accesses_in(Interval(0, 2)) == 2
        assert a.accesses_in(Interval(4, 8)) == 0


class TestPairWeights:
    def test_min_rule(self):
        """Paper: w = MIN(accesses of each variable in the overlap)."""
        profile = profile_trace(interleaved_trace())
        # Overlap of a and b is [2, 4): a has 1 access (pos 3),
        # b has 1 access (pos 2) -> w = 1.
        assert profile.pair_weight("a", "b") == 1

    def test_disjoint_lifetimes_weight_zero(self):
        profile = profile_trace(interleaved_trace())
        assert profile.pair_weight("a", "c") == 0

    def test_weight_symmetry(self):
        profile = profile_trace(interleaved_trace())
        assert profile.pair_weight("a", "b") == profile.pair_weight("b", "a")

    def test_pairwise_weights_drops_zero(self):
        profile = profile_trace(interleaved_trace())
        weights = pairwise_weights(profile)
        assert frozenset(("a", "c")) not in weights
        assert weights[frozenset(("a", "b"))] == 1

    def test_pairwise_weights_keep_zero(self):
        profile = profile_trace(interleaved_trace())
        weights = pairwise_weights(profile, drop_zero=False)
        assert weights[frozenset(("a", "c"))] == 0

    def test_relative_ordering(self):
        """The paper's stated requirement: heavier interleaving gives a
        relatively heavier edge."""
        builder = TraceBuilder()
        # x and y interleave 10 times; x and z once.
        for index in range(10):
            builder.append(0x000 + index, variable="x")
            builder.append(0x100 + index, variable="y")
        builder.append(0x200, variable="z")
        builder.append(0x00F, variable="x")
        profile = profile_trace(builder.build())
        assert profile.pair_weight("x", "y") > profile.pair_weight("x", "z")


class TestStaticAnalysis:
    def test_loop_multiplies_counts(self):
        program = loop(10, access("a", count=2), compute(1))
        profile = analyze_program(program)
        assert profile.variables["a"].access_count == 20

    def test_nested_loops(self):
        program = loop(4, loop(8, access("a")))
        profile = analyze_program(program)
        assert profile.variables["a"].access_count == 32

    def test_branch_probability_scales(self):
        program = loop(
            100, branch(0.25, access("rare"), access("common"))
        )
        profile = analyze_program(program)
        assert profile.variables["rare"].access_count == 25
        assert profile.variables["common"].access_count == 75

    def test_sequential_lifetimes_disjoint(self):
        from repro.profiling.ir import SeqNode

        program = SeqNode.of(
            loop(10, access("first")),
            loop(10, access("second")),
        )
        profile = analyze_program(program)
        first = profile.variables["first"].lifetime
        second = profile.variables["second"].lifetime
        assert not first.overlaps(second)
        assert profile.pair_weight("first", "second") == 0

    def test_interleaved_lifetimes_overlap(self):
        program = loop(10, access("a"), access("b"))
        profile = analyze_program(program)
        assert profile.pair_weight("a", "b") > 0

    def test_sizes_from_symbols(self):
        table = SymbolTable()
        table.add(Variable("a", AddressRange(0, 64)))
        profile = analyze_program(loop(4, access("a")), table)
        assert profile.variables["a"].size == 64

    def test_static_matches_measured_on_simple_kernel(self):
        """The static estimate tracks a measured profile of the same
        loop nest (relative ordering, not exact values)."""
        # Measured: for i in 100: read a, read b; then for i in 50: c.
        builder = TraceBuilder()
        for index in range(100):
            builder.append(0x000 + (index % 8) * 2, variable="a")
            builder.append(0x100 + (index % 8) * 2, variable="b")
        for index in range(50):
            builder.append(0x200 + (index % 8) * 2, variable="c")
        measured = profile_trace(builder.build())

        from repro.profiling.ir import SeqNode

        program = SeqNode.of(
            loop(100, access("a"), access("b")),
            loop(50, access("c")),
        )
        static = analyze_program(program)
        # Same relative structure: a-b heavy, a-c and b-c zero.
        assert static.pair_weight("a", "b") > 0
        assert static.pair_weight("a", "c") == 0
        assert measured.pair_weight("a", "b") > 0
        assert measured.pair_weight("a", "c") == 0
        # Counts agree exactly for this deterministic nest.
        for name in ("a", "b", "c"):
            assert (
                static.variables[name].access_count
                == measured.variables[name].access_count
            )

    def test_write_fraction(self):
        profile = analyze_program(
            loop(10, access("a", write_fraction=0.5))
        )
        assert profile.variables["a"].write_count == 5

    def test_ir_validation(self):
        with pytest.raises(ValueError):
            access("a", count=-1)
        with pytest.raises(ValueError):
            access("a", write_fraction=1.5)
        with pytest.raises(ValueError):
            loop(-1, access("a"))
        with pytest.raises(ValueError):
            branch(2.0, access("a"))
        with pytest.raises(ValueError):
            compute(-1)

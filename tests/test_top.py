"""``repro fleet top`` and the occupancy heatmap report."""

import asyncio
import re

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.experiments.report import (
    heatmap_grid_html,
    occupancy_heatmap_html,
    shard_heatmaps_html,
)
from repro.fleet import FleetConfig
from repro.fleet.service import FleetService, ServiceConfig
from repro.fleet.service.top import main, render_top_frame
from repro.inspect import load_event_streams
from repro.sim.config import MULTITASK_TIMING
from repro.workloads.suite import make_workload


def spec_for(index, workload, **kwargs):
    from repro.fleet import TenantSpec

    run = make_workload(workload, seed=10 + index, **kwargs).record()
    return TenantSpec(
        name=f"{workload}-{index}",
        run=run,
        priority=1,
        address_offset=index << 32,
    )


def small_service_config():
    return ServiceConfig(
        shards=2,
        geometry=CacheGeometry(line_size=16, sets=32, columns=8),
        timing=MULTITASK_TIMING,
        fleet=FleetConfig(
            quantum_instructions=128,
            window_instructions=1024,
            hysteresis_windows=8,
            min_detect_accesses=256,
        ),
        patience_instructions=8_192,
        monitor_interval_instructions=2_048,
    )


class TestRenderTopFrame:
    def test_renders_live_service_state(self):
        """The frame shows per-shard occupancy and p99 from a running
        service — the acceptance shape of ``repro fleet top``."""
        specs = [
            spec_for(0, "crc32", message_bytes=256),
            spec_for(1, "histogram", sample_count=256, bin_count=32),
        ]

        async def scenario():
            async with FleetService(small_service_config()) as service:
                await asyncio.gather(
                    *(
                        service.submit(spec, service_instructions=None)
                        for spec in specs
                    )
                )
                # Let the shards execute a few segments so occupancy
                # and miss rates are non-trivial.
                await service.wait_until(service.virtual_now + 8_192)
                frame = render_top_frame(service, frame=3)
                residents = service.snapshot().residents
                return frame, residents

        frame, residents = asyncio.run(scenario())
        assert residents == len(specs)
        assert "[frame 3] fleet top" in frame
        assert "p99 wait" in frame and "p50 wait" in frame
        assert "columns" in frame and "queue" in frame
        # One 8-column fill gauge per shard, delimited |........|
        # (glyphs may include spaces for empty columns).
        gauges = re.findall(r"\|[ .:=+*#%@-]{8}\|", frame)
        assert len(gauges) == 2
        # The resident tenants appear in the busiest-tenants table.
        for spec in specs:
            assert spec.name in frame

    def test_renders_stopped_service(self):
        service = FleetService(small_service_config())
        frame = render_top_frame(service)
        assert "0 residents" in frame
        assert "[frame" not in frame


class TestFleetTopCli:
    def test_once_smoke_with_artifacts(self, tmp_path, capsys):
        events = tmp_path / "events.npz"
        report = tmp_path / "top.html"
        code = main(
            [
                "top",
                "--once",
                "--tenants",
                "12",
                "--shards",
                "2",
                "--events-out",
                str(events),
                "--report-out",
                str(report),
            ],
            prog="repro fleet",
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet top" in out
        assert "load complete:" in out
        assert "0 invariant violations" in out
        assert events.exists()
        assert report.exists()
        stream = load_event_streams(events)
        assert stream.shard_ids == [0, 1]
        assert len(stream) > 0
        html = report.read_text(encoding="utf-8")
        assert html.startswith("<!doctype html>")
        assert "column occupancy" in html
        assert "shard 0" in html and "shard 1" in html

    def test_frames_mode(self, capsys):
        code = main(
            [
                "top",
                "--tenants",
                "8",
                "--shards",
                "2",
                "--interval",
                "32768",
            ],
            prog="repro fleet",
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[frame 0]" in out


class TestHeatmapHtml:
    def test_grid_cells_colored_by_value(self):
        grid = np.array([[0.0, 1.0], [0.5, 0.25]])
        html = heatmap_grid_html(grid, caption="shard 0")
        assert html.count("<tr>") == 2
        assert html.count("<td") == 4
        assert "rgb(255,255,255)" in html  # empty cell
        assert "rgb(40,75,175)" in html  # full cell
        assert "shard 0" in html

    def test_page_wraps_all_shards(self):
        grids = {
            1: np.zeros((4, 8)),
            0: np.ones((4, 8)) * 0.5,
        }
        html = shard_heatmaps_html(grids, title="demo", horizon=1234)
        assert html.index("shard 0") < html.index("shard 1")
        assert "1234 instructions" in html
        assert "<script" not in html and "href=" not in html

    def test_empty_stream_page(self, tmp_path):
        from repro.inspect import EventRing, save_event_streams

        path = save_event_streams(
            tmp_path / "empty.npz", {0: EventRing(capacity=4)}
        )
        html = occupancy_heatmap_html(
            load_event_streams(path), columns=8
        )
        assert "no events recorded" in html


def test_unified_cli_routes_fleet():
    from repro.cli import build_parser

    arguments = build_parser().parse_args(["fleet", "top", "--once"])
    assert arguments.command == "fleet"
    assert arguments.rest == ["top", "--once"]

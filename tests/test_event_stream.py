"""Event streams: bounded rings, npz flush, differential replay.

The load-bearing test is differential: flush a live daemon's event
rings, replay them offline, and the reconstruction must match the
final :class:`ServiceSnapshot` the daemon itself reported —
bit-for-bit on the full 1000-tenant serve schedule.  A stream that
passes that diff is a faithful, complete history; a truncated stream
(bounded ring overflow) must say so rather than silently diverge.
"""

import asyncio
import dataclasses

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.experiments.serve import ServeConfig
from repro.fleet import FleetConfig
from repro.fleet.service import FleetService, ServiceConfig, ShardServer
from repro.fleet.service.loadgen import (
    build_arrivals,
    default_workload_pool,
    run_load,
)
from repro.inspect import (
    EventKind,
    EventRing,
    diff_replay,
    load_event_streams,
    occupancy_timeline,
    replay_events,
    save_event_streams,
)
from repro.sim.config import MULTITASK_TIMING
from repro.workloads.suite import make_workload

CONFIG = FleetConfig(quantum_instructions=128, window_instructions=2048)


def spec_for(index, workload, **kwargs):
    from repro.fleet import TenantSpec

    run = make_workload(workload, seed=10 + index, **kwargs).record()
    return TenantSpec(
        name=f"{workload}-{index}",
        run=run,
        priority=1,
        address_offset=index << 32,
    )


def small_service_config(**overrides):
    base = ServiceConfig(
        shards=2,
        geometry=CacheGeometry(line_size=16, sets=32, columns=8),
        timing=MULTITASK_TIMING,
        fleet=dataclasses.replace(
            CONFIG,
            window_instructions=1024,
            hysteresis_windows=8,
            min_detect_accesses=256,
        ),
        patience_instructions=8_192,
        monitor_interval_instructions=2_048,
    )
    return dataclasses.replace(base, **overrides)


class TestEventRing:
    def test_bounded_drop_oldest(self):
        ring = EventRing(capacity=3)
        for index in range(5):
            ring.record(index, EventKind.ADMIT, f"t{index}")
        assert len(ring) == 3
        assert ring.recorded == 5
        assert ring.dropped == 2
        retained = ring.events()
        assert [event.tenant for event in retained] == ["t2", "t3", "t4"]
        # Sequence numbers survive the drop: the gap is visible.
        assert [event.seq for event in retained] == [2, 3, 4]

    def test_no_drops_under_capacity(self):
        ring = EventRing(capacity=8)
        ring.record(0, EventKind.ADMIT, "a", mask_bits=0b11, detail=7)
        assert ring.dropped == 0
        (event,) = ring.events()
        assert event.mask_bits == 0b11
        assert event.detail == 7
        assert event.as_dict()["kind"] == "ADMIT"

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            EventRing(capacity=0)


class TestSaveLoadRoundtrip:
    @pytest.fixture
    def rings(self):
        rings = {0: EventRing(capacity=16), 2: EventRing(capacity=16)}
        rings[0].record(0, EventKind.ADMIT, "alpha", mask_bits=0b0011)
        rings[0].record(40, EventKind.GRANT, "alpha", mask_bits=0b0111,
                        detail=120)
        rings[0].record(90, EventKind.PHASE, "alpha")
        rings[0].record(100, EventKind.DEPART, "alpha")
        rings[2].record(10, EventKind.REJECT, "beta")
        rings[2].record(20, EventKind.MIGRATE_IN, "gamma",
                        mask_bits=0b1100)
        return rings

    @pytest.mark.parametrize("mmap", [False, True])
    def test_roundtrip(self, tmp_path, rings, mmap):
        path = save_event_streams(tmp_path / "events.npz", rings)
        stream = load_event_streams(path, mmap=mmap)
        assert stream.shard_ids == [0, 2]
        assert len(stream) == 6
        for shard, ring in rings.items():
            assert stream.for_shard(shard) == ring.events()
            assert stream.recorded_for(shard) == ring.recorded
            assert stream.dropped_for(shard) == 0
            assert stream.capacity_for(shard) == 16
        assert stream.horizon() == 100
        assert stream.horizon(shard=2) == 20

    def test_appends_npz_suffix(self, tmp_path, rings):
        path = save_event_streams(tmp_path / "events", rings)
        assert path.suffix == ".npz"
        assert path.exists()
        assert load_event_streams(path).for_shard(0)

    def test_occupancy_timeline_shape(self, tmp_path, rings):
        path = save_event_streams(tmp_path / "events.npz", rings)
        stream = load_event_streams(path)
        grid = occupancy_timeline(stream, 0, columns=8, buckets=10)
        assert grid.shape == (8, 10)
        assert float(grid.max()) <= 1.0 + 1e-9
        assert float(grid.min()) >= 0.0
        # alpha held columns 0-1 from t=0 and 0-2 from t=40 to 100:
        # columns 0 and 1 are occupied the whole horizon.
        assert np.allclose(grid[0], 1.0)
        assert np.allclose(grid[1], 1.0)
        assert float(grid[3].sum()) == 0.0

    def test_empty_rings_flush_cleanly(self, tmp_path):
        path = save_event_streams(
            tmp_path / "empty.npz", {0: EventRing(capacity=4)}
        )
        stream = load_event_streams(path)
        assert len(stream) == 0
        assert stream.for_shard(0) == []
        assert stream.horizon() == 0
        assert replay_events(stream, columns=8)[0].residents == {}


async def _drive(config, specs, service_instructions=4096):
    async with FleetService(config) as service:
        tickets = await asyncio.gather(
            *(
                service.submit(
                    spec, service_instructions=service_instructions
                )
                for spec in specs
            )
        )
        await service.drain()
        return tickets, service.snapshot(), service


class TestDifferentialReplay:
    def test_quick_daemon_replays_exactly(self, tmp_path):
        specs = [
            spec_for(0, "crc32", message_bytes=256),
            spec_for(1, "histogram", sample_count=256, bin_count=32),
            spec_for(2, "fir", signal_length=256, tap_count=16),
        ]
        tickets, snapshot, service = asyncio.run(
            _drive(small_service_config(), specs)
        )
        assert all(ticket.admitted for ticket in tickets)
        path = service.flush_events(tmp_path / "events.npz")
        stream = load_event_streams(path)
        replayed = replay_events(
            stream, service.config.geometry.columns
        )
        assert diff_replay(replayed, snapshot.as_dict()) == []
        # Everyone departed: the replay agrees nobody is resident.
        assert all(
            not shard.residents for shard in replayed.values()
        )
        total_admits = sum(
            shard.admitted for shard in replayed.values()
        )
        assert total_admits >= len(specs)

    def test_truncated_stream_reports_itself(self, tmp_path):
        """A too-small ring must announce incompleteness, not lie."""
        specs = [
            spec_for(index, "crc32", message_bytes=256)
            for index in range(6)
        ]
        config = small_service_config(shards=1, event_capacity=2)
        tickets, snapshot, service = asyncio.run(
            _drive(config, specs, service_instructions=2048)
        )
        ring = service.event_rings()[0]
        assert ring.dropped > 0
        assert snapshot.shards[0].events_dropped == ring.dropped
        path = service.flush_events(tmp_path / "truncated.npz")
        stream = load_event_streams(path)
        assert stream.dropped_for(0) == ring.dropped
        diffs = diff_replay(
            replay_events(stream, config.geometry.columns),
            snapshot.as_dict(),
        )
        assert any("not a complete history" in line for line in diffs)

    def test_serve_schedule_replays_bit_for_bit(self, tmp_path):
        """Acceptance: the full 1000-tenant serve schedule."""
        config = ServeConfig()
        assert config.load.tenants == 1000
        service = FleetService(
            dataclasses.replace(
                config.service, migration_enabled=True
            )
        )
        pool = default_workload_pool(config.load.seed)
        arrivals = build_arrivals(
            config.load, service.router, runs=pool
        )

        async def scenario():
            async with service:
                report = await run_load(service, arrivals)
                return report, service.snapshot()

        report, snapshot = asyncio.run(scenario())
        assert report.admitted + report.rejected == 1000

        path = service.flush_events(tmp_path / "serve_events.npz")
        stream = load_event_streams(path)
        # Nothing dropped: the default ring holds the whole history.
        for shard in stream.shard_ids:
            assert stream.dropped_for(shard) == 0
        replayed = replay_events(
            stream, config.service.geometry.columns
        )
        assert diff_replay(replayed, snapshot.as_dict()) == []
        # The stream also carries migrations; the monitor moved some.
        assert sum(
            shard.migrations_in for shard in replayed.values()
        ) == len(service.migrations)
        # The heatmap grid folds from the same stream without error.
        for shard in stream.shard_ids:
            grid = occupancy_timeline(
                stream,
                shard,
                columns=config.service.geometry.columns,
                buckets=48,
            )
            assert grid.shape == (
                config.service.geometry.columns,
                48,
            )
            assert float(grid.max()) <= 1.0 + 1e-9

"""The column broker: admission, reclamation, re-grant, baselines."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.fleet import (
    ColumnBroker,
    ColumnDemand,
    FleetAdmissionError,
    SharedPool,
    StaticEqualSplit,
    demand_curve,
    demand_curves,
)
from repro.layout.algorithm import LayoutConfig
from repro.layout.partition import split_for_columns
from repro.layout.session import PlannerSession
from repro.sim.config import MULTITASK_TIMING
from repro.sim.engine.batched import batched_simulate
from repro.utils.bitvector import ColumnMask
from repro.workloads.suite import make_workload


def record(name, **kwargs):
    return make_workload(name, **kwargs).record()


@pytest.fixture(scope="module")
def small_runs():
    return {
        "crc": record("crc32", message_bytes=256, seed=1),
        "hist": record("histogram", sample_count=256, bin_count=32, seed=2),
        "fir": record("fir", signal_length=256, tap_count=16, seed=3),
        "scan": record(
            "scan", buffer_bytes=8192, stride_bytes=16, passes=2, seed=4
        ),
        "gzip": record(
            "gzip", input_bytes=1024, window_bits=10, hash_bits=9, seed=5
        ),
    }


@pytest.fixture
def geometry():
    return CacheGeometry(line_size=16, sets=32, columns=8)


class TestDemandCurve:
    def test_measured_costs_non_increasing(self, small_runs, geometry):
        demand = demand_curve(small_runs["gzip"], geometry)
        assert len(demand.measured_costs) == geometry.columns
        for before, after in zip(
            demand.measured_costs, demand.measured_costs[1:]
        ):
            assert after <= before

    def test_scan_has_flat_measured_curve(self, small_runs, geometry):
        """A pure stream gains nothing from extra columns."""
        demand = demand_curve(small_runs["scan"], geometry)
        # Essentially all accesses miss regardless of the grant.
        spread = demand.measured_costs[0] - demand.measured_costs[-1]
        assert spread <= demand.measured_costs[0] * 0.02
        assert all(
            demand.marginal_benefit(c) <= 2
            for c in range(2, geometry.columns + 1)
        )

    def test_hot_table_tenant_values_early_columns(
        self, small_runs, geometry
    ):
        demand = demand_curve(small_runs["crc"], geometry)
        assert demand.marginal_benefit(2) > 0

    def test_marginal_benefit_validates(self, small_runs, geometry):
        demand = demand_curve(small_runs["crc"], geometry)
        with pytest.raises(ValueError):
            demand.marginal_benefit(1)
        with pytest.raises(ValueError):
            demand.cost(0)


def per_candidate_demand(run, geometry, profile_accesses=8192):
    """The pre-batching reference: one solo simulation per candidate
    grant size, each against its own ``c``-column geometry."""
    session = PlannerSession()
    column_bytes = geometry.sets * geometry.line_size
    units = split_for_columns(run.memory_map.symbols, column_bytes)
    trace = run.trace
    if len(trace) > profile_accesses:
        trace = trace.slice(0, profile_accesses)
    profile = session.profile(trace, units, by_address=True)
    blocks = trace.addresses >> geometry.offset_bits
    plan_costs = []
    measured_costs = []
    for columns in range(1, geometry.columns + 1):
        config = LayoutConfig(
            columns=columns,
            column_bytes=column_bytes,
            line_size=geometry.line_size,
            split_oversized=False,
        )
        assignment = session.plan_from_profile(config, profile, units)
        plan_costs.append(int(assignment.predicted_cost))
        candidate = CacheGeometry(
            line_size=geometry.line_size,
            sets=geometry.sets,
            columns=columns,
        )
        measured_costs.append(
            int(batched_simulate(blocks, candidate).misses)
        )
    return ColumnDemand(
        plan_costs=tuple(plan_costs),
        measured_costs=tuple(measured_costs),
    )


class TestBatchedDemandCurves:
    """One fused kernel batch == one solo simulation per candidate."""

    def test_batch_matches_per_candidate_loop(
        self, small_runs, geometry
    ):
        """All tenants x all candidate grant sizes in one kernel call
        must price identically to simulating every candidate geometry
        by itself."""
        runs = list(small_runs.values())
        batched = demand_curves(
            [(run, None) for run in runs], geometry
        )
        for run, got in zip(runs, batched):
            assert got == per_candidate_demand(run, geometry)

    def test_batch_seeds_the_session_cache(self, small_runs, geometry):
        """A curve priced in a batch is a pure cache hit afterwards —
        for the singular API and for a repeated batch alike."""
        session = PlannerSession()
        runs = list(small_runs.values())
        batched = demand_curves(
            [(run, None) for run in runs], geometry, session=session
        )
        misses_after_batch = session.cache.misses
        again = demand_curve(runs[0], geometry, session=session)
        assert again == batched[0]
        assert demand_curves(
            [(run, None) for run in runs], geometry, session=session
        ) == batched
        assert session.cache.misses == misses_after_batch

    def test_duplicate_probes_collapse(self, small_runs, geometry):
        """The same workload twice in one batch computes once."""
        session = PlannerSession()
        run = small_runs["crc"]
        first, second = demand_curves(
            [(run, None), (run, None)], geometry, session=session
        )
        assert first == second == per_candidate_demand(run, geometry)

    def test_prime_makes_admissions_cache_hits(
        self, small_runs, geometry
    ):
        """`ColumnBroker.prime` batch-prices prospective tenants so
        the subsequent one-by-one admits recompute nothing."""
        broker = ColumnBroker(geometry, MULTITASK_TIMING)
        runs = {
            "a": small_runs["gzip"],
            "b": small_runs["crc"],
            "c": small_runs["hist"],
        }
        broker.prime(list(runs.values()))
        misses_after_prime = broker.session.cache.misses
        for name, run in runs.items():
            broker.admit(name, run)
        assert broker.session.cache.misses == misses_after_prime
        broker.check_disjoint()
        # The primed curves are the ones admission would have computed.
        for name, run in runs.items():
            assert broker.demands[name] == per_candidate_demand(
                run, geometry
            )


class TestColumnBroker:
    def test_admission_grants_disjoint_and_complete(
        self, small_runs, geometry
    ):
        broker = ColumnBroker(geometry, MULTITASK_TIMING)
        broker.admit("a", small_runs["gzip"])
        broker.admit("b", small_runs["crc"])
        broker.admit("c", small_runs["hist"])
        broker.check_disjoint()
        # All columns are always placed: an idle column serves nobody.
        assert broker.free_columns().is_empty()
        assert set(broker.resident) == {"a", "b", "c"}
        for name in ("a", "b", "c"):
            assert not broker.grant_of(name).is_empty()
            assert f"tenant:{name}" in broker.tint_table

    def test_rejection_when_zero_columns_free(self, small_runs):
        geometry = CacheGeometry(line_size=16, sets=32, columns=2)
        broker = ColumnBroker(geometry, MULTITASK_TIMING)
        broker.admit("a", small_runs["crc"])
        broker.admit("b", small_runs["hist"])
        with pytest.raises(FleetAdmissionError):
            broker.admit("c", small_runs["fir"])
        # The failed admission left no residue.
        assert broker.resident == ["a", "b"]
        assert "c" not in broker.demands
        broker.check_disjoint()

    def test_departure_releases_and_regrants(self, small_runs, geometry):
        broker = ColumnBroker(geometry, MULTITASK_TIMING)
        broker.admit("a", small_runs["gzip"])
        broker.admit("b", small_runs["crc"])
        before = broker.grant_of("a").count()
        charges = broker.depart("b")
        assert "b" not in broker.grants
        assert "tenant:b" not in broker.tint_table
        # The survivor absorbed the released columns (and was charged
        # a tint rewrite for the re-grant).
        assert broker.grant_of("a").count() > before
        assert broker.grant_of("a").count() == geometry.columns
        assert charges == {
            "a": MULTITASK_TIMING.remap_tint_cycles
        }
        broker.check_disjoint()

    def test_priority_weighted_allocation(self, small_runs, geometry):
        """Two tenants with the same demand: priority decides."""
        broker = ColumnBroker(geometry, MULTITASK_TIMING)
        broker.admit("low", small_runs["gzip"], priority=1)
        broker.admit("high", small_runs["gzip"], priority=3)
        assert (
            broker.grant_of("high").count()
            >= broker.grant_of("low").count()
        )

    def test_arrival_reclaims_from_low_value_tenant(
        self, small_runs, geometry
    ):
        """A demanding newcomer pulls columns out of a scan's grant."""
        broker = ColumnBroker(geometry, MULTITASK_TIMING)
        broker.admit("stream", small_runs["scan"], priority=1)
        assert broker.grant_of("stream").count() == geometry.columns
        broker.admit("hot", small_runs["gzip"], priority=2)
        broker.check_disjoint()
        assert broker.grant_of("hot").count() > broker.grant_of(
            "stream"
        ).count()

    def test_refresh_with_hysteresis_keeps_allocation(
        self, small_runs, geometry
    ):
        broker = ColumnBroker(
            geometry, MULTITASK_TIMING, min_benefit_cycles=10**9
        )
        broker.admit("a", small_runs["gzip"])
        broker.admit("b", small_runs["crc"])
        grants_before = dict(broker.grants)
        charges = broker.refresh(
            "a", small_runs["gzip"], small_runs["gzip"].trace
        )
        assert charges == {}
        assert broker.grants == grants_before

    def test_refresh_then_admit_keeps_disjoint(
        self, small_runs, geometry
    ):
        """An arrival right after an in-flight repartition composes."""
        broker = ColumnBroker(geometry, MULTITASK_TIMING)
        broker.admit("a", small_runs["gzip"])
        broker.admit("b", small_runs["crc"])
        broker.refresh("a", small_runs["gzip"], small_runs["gzip"].trace)
        broker.admit("c", small_runs["hist"])
        broker.check_disjoint()
        assert broker.free_columns().is_empty()

    def test_duplicate_admission_rejected(self, small_runs, geometry):
        broker = ColumnBroker(geometry, MULTITASK_TIMING)
        broker.admit("a", small_runs["crc"])
        with pytest.raises(ValueError):
            broker.admit("a", small_runs["crc"])

    def test_depart_unknown_raises(self, geometry):
        broker = ColumnBroker(geometry, MULTITASK_TIMING)
        with pytest.raises(KeyError):
            broker.depart("ghost")

    def test_rewrite_log_records_reasons(self, small_runs, geometry):
        broker = ColumnBroker(geometry, MULTITASK_TIMING)
        broker.admit("a", small_runs["gzip"])
        broker.admit("b", small_runs["crc"])
        broker.depart("a")
        reasons = {rewrite.reason for rewrite in broker.rewrites}
        assert "arrival" in reasons
        assert "departure" in reasons


class TestBaselines:
    def test_shared_pool_full_mask(self, small_runs, geometry):
        pool = SharedPool(geometry, MULTITASK_TIMING, max_tenants=2)
        pool.admit("a", small_runs["crc"])
        pool.admit("b", small_runs["hist"])
        full = ColumnMask.all_columns(geometry.columns)
        assert pool.grants["a"] == full
        assert pool.grants["b"] == full
        with pytest.raises(FleetAdmissionError):
            pool.admit("c", small_runs["fir"])
        pool.depart("a")
        pool.admit("c", small_runs["fir"])
        assert pool.resident == ["b", "c"]

    def test_static_equal_split_slots(self, small_runs, geometry):
        split = StaticEqualSplit(geometry, MULTITASK_TIMING, slots=4)
        split.admit("a", small_runs["crc"])
        split.admit("b", small_runs["hist"])
        assert split.grants["a"].count() == geometry.columns // 4
        assert not split.grants["a"].overlaps(split.grants["b"])
        # Slots are stable: refresh never moves a static partition.
        before = split.grants["a"]
        split.refresh("a", small_runs["crc"], small_runs["crc"].trace)
        assert split.grants["a"] == before
        # Departing frees the slot for the next arrival.
        split.depart("a")
        split.admit("c", small_runs["fir"])
        assert split.grants["c"] == before

    def test_static_equal_split_rejects_when_full(
        self, small_runs, geometry
    ):
        split = StaticEqualSplit(geometry, MULTITASK_TIMING, slots=2)
        split.admit("a", small_runs["crc"])
        split.admit("b", small_runs["hist"])
        with pytest.raises(FleetAdmissionError):
            split.admit("c", small_runs["fir"])

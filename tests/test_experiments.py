"""Integration tests: the experiments reproduce the paper's shapes.

These run the quick configurations; the benchmarks run the full ones.
"""

import pytest

from repro.experiments.figure4 import (
    Figure4Config,
    check_figure4a,
    check_figure4b,
    check_figure4c,
    check_figure4d,
    run_figure4_routine,
    run_figure4d,
)
from repro.experiments.figure5 import (
    Figure5Config,
    check_figure5,
    run_figure5,
)
from repro.experiments.report import (
    ExperimentSeries,
    ShapeCheck,
    all_passed,
    checks_table,
    render_checks,
)


@pytest.fixture(scope="module")
def fig4_config():
    return Figure4Config().quick()


class TestFigure4:
    def test_dequant_shape(self, fig4_config):
        series = run_figure4_routine("dequant", fig4_config)
        assert all_passed(check_figure4a(series)), render_checks(
            check_figure4a(series)
        )

    def test_plus_shape(self, fig4_config):
        series = run_figure4_routine("plus", fig4_config)
        assert all_passed(check_figure4b(series)), render_checks(
            check_figure4b(series)
        )

    def test_idct_shape(self, fig4_config):
        series = run_figure4_routine("idct", fig4_config)
        assert all_passed(check_figure4c(series)), render_checks(
            check_figure4c(series)
        )

    def test_combined_shape(self, fig4_config):
        result = run_figure4d(fig4_config)
        assert all_passed(check_figure4d(result)), render_checks(
            check_figure4d(result)
        )

    def test_combined_improvement_positive(self, fig4_config):
        result = run_figure4d(fig4_config)
        assert result.improvement > 0

    def test_unknown_routine(self):
        with pytest.raises(ValueError):
            run_figure4_routine("dct")

    def test_series_renders(self, fig4_config):
        series = run_figure4_routine("plus", fig4_config)
        text = series.to_table()
        assert "cache_columns" in text and "cycles" in text

    def test_layout_rerun_per_partition(self, fig4_config):
        """The sweep re-runs the layout algorithm per partition: the
        scratchpad byte count varies across partitions."""
        series = run_figure4_routine("dequant", fig4_config)
        pinned = series.series["scratchpad_bytes"]
        assert pinned[0] > 0  # all-scratchpad pins data
        assert pinned[-1] == 0  # all-cache pins nothing


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        config = Figure5Config().quick()
        return config, run_figure5(config)

    def test_all_shape_checks(self, result):
        config, series = result
        checks = check_figure5(series, config)
        assert all_passed(checks), render_checks(checks)

    def test_four_curves_present(self, result):
        _, series = result
        assert set(series.series) == {
            "gzip.16k", "gzip.16k mapped",
            "gzip.128k", "gzip.128k mapped",
        }

    def test_cpis_at_least_one(self, result):
        _, series = result
        for curve in series.series.values():
            assert all(cpi >= 1.0 for cpi in curve)

    def test_table_renders(self, result):
        _, series = result
        assert "quantum" in series.to_table()


class TestReportHelpers:
    def test_series_add_validates_length(self):
        series = ExperimentSeries("x", "q", [1, 2])
        with pytest.raises(ValueError):
            series.add("bad", [1])

    def test_shape_check_str(self):
        check = ShapeCheck("claim", True, "detail")
        assert "PASS" in str(check) and "detail" in str(check)
        assert "FAIL" in str(ShapeCheck("c", False))

    def test_checks_table(self):
        text = checks_table([ShapeCheck("a", True), ShapeCheck("b", False)])
        assert "PASS" in text and "FAIL" in text

    def test_all_passed(self):
        assert all_passed([ShapeCheck("a", True)])
        assert not all_passed([ShapeCheck("a", True), ShapeCheck("b", False)])

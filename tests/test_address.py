"""Tests for address ranges and page arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.address import (
    AddressRange,
    align_down,
    align_up,
    page_number,
    page_offset,
)


class TestPageArithmetic:
    def test_page_number(self):
        assert page_number(0x1234, 256) == 0x12

    def test_page_offset(self):
        assert page_offset(0x1234, 256) == 0x34

    def test_non_power_of_two_page_rejected(self):
        with pytest.raises(ValueError):
            page_number(0, 100)

    def test_align_up_down(self):
        assert align_up(0x101, 16) == 0x110
        assert align_up(0x100, 16) == 0x100
        assert align_down(0x10f, 16) == 0x100


class TestAddressRange:
    def test_end(self):
        assert AddressRange(0x100, 0x20).end == 0x120

    def test_contains_boundaries(self):
        r = AddressRange(0x100, 0x20)
        assert r.contains(0x100)
        assert r.contains(0x11F)
        assert not r.contains(0x120)

    def test_contains_range(self):
        outer = AddressRange(0, 100)
        assert outer.contains_range(AddressRange(10, 50))
        assert not outer.contains_range(AddressRange(60, 50))

    def test_overlaps(self):
        assert AddressRange(0, 16).overlaps(AddressRange(15, 1))
        assert not AddressRange(0, 16).overlaps(AddressRange(16, 4))

    def test_empty_range(self):
        r = AddressRange(10, 0)
        assert r.is_empty()
        assert list(r.pages(64)) == []
        assert list(r.lines(16)) == []

    def test_pages_spanning(self):
        r = AddressRange(0x30, 0x40)  # crosses the 0x40 page boundary
        assert list(r.pages(64)) == [0, 1]

    def test_lines_unaligned_start(self):
        r = AddressRange(0x18, 0x10)  # touches lines 0x10 and 0x20
        assert list(r.lines(16)) == [0x10, 0x20]

    def test_line_count(self):
        assert AddressRange(0x18, 0x10).line_count(16) == 2
        assert AddressRange(0x10, 0x10).line_count(16) == 1
        assert AddressRange(0x10, 0).line_count(16) == 0

    def test_split_exact(self):
        pieces = AddressRange(0, 100).split(40)
        assert [(p.base, p.size) for p in pieces] == [
            (0, 40), (40, 40), (80, 20),
        ]

    def test_split_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            AddressRange(0, 10).split(0)

    def test_iter_len(self):
        r = AddressRange(5, 3)
        assert list(r) == [5, 6, 7]
        assert len(r) == 3


@given(
    base=st.integers(0, 10_000),
    size=st.integers(0, 2_000),
    line=st.sampled_from([16, 32, 64]),
)
def test_line_count_matches_enumeration(base, size, line):
    r = AddressRange(base, size)
    assert r.line_count(line) == len(list(r.lines(line)))


@given(
    base=st.integers(0, 10_000),
    size=st.integers(1, 2_000),
    chunk=st.integers(1, 999),
)
def test_split_covers_range_exactly(base, size, chunk):
    r = AddressRange(base, size)
    pieces = r.split(chunk)
    assert pieces[0].base == r.base
    assert pieces[-1].end == r.end
    for left, right in zip(pieces, pieces[1:]):
        assert left.end == right.base
    assert sum(p.size for p in pieces) == size

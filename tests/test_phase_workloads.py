"""The phase-heavy workloads: real results, real phase structure."""

import numpy as np
import pytest

from repro.workloads.packet import (
    PacketPipeline,
    reference_pipeline,
)
from repro.workloads.suite import available_workloads, make_workload
from repro.workloads.transform import (
    PhasedFFT,
    TwoPassTransform,
    reference_fft,
    reference_twopass,
    zigzag_order,
)


class TestPacketPipeline:
    def test_outputs_match_reference(self):
        run = PacketPipeline(batches=2, rounds=2, seed=7).record()
        reference = reference_pipeline(2, 2, 7)
        for name, expected in reference.items():
            assert np.array_equal(run.outputs[name], expected), name

    def test_phase_structure(self):
        run = PacketPipeline(batches=2, rounds=1, seed=0).record()
        assert run.phase_labels() == ["parse", "route", "shape", "emit"]
        assert len(run.phases) == 8  # 4 stages x 2 batches
        # Stages are equal-length sweeps and cover the whole trace.
        lengths = {
            marker.stop - marker.start for marker in run.phases
        }
        assert len(lengths) == 1
        assert run.phases[-1].stop == len(run.trace)

    def test_stage_working_sets_rotate(self):
        run = PacketPipeline(batches=1, rounds=1, seed=0).record()
        active = {
            label: set(run.phase_trace(label).variables())
            for label in run.phase_labels()
        }
        tables = {"flow_tbl", "route_tbl", "stats_tbl", "police_tbl"}
        for label, variables in active.items():
            assert "payload" in variables, label
            assert len(variables & tables) == 3, label
        # Every pair of tables is co-active somewhere (the K4).
        for first in tables:
            for second in tables - {first}:
                assert any(
                    {first, second} <= variables
                    for variables in active.values()
                ), (first, second)

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            PacketPipeline(batches=0)
        with pytest.raises(ValueError, match=">= 1"):
            PacketPipeline(rounds=0)


class TestTwoPassTransform:
    def test_outputs_match_reference(self):
        run = TwoPassTransform(blocks=4, frames=2, seed=3).record()
        reference = reference_twopass(4, 2, 3)
        assert np.array_equal(run.outputs["coeffs"], reference["coeffs"])
        assert np.array_equal(run.outputs["output"], reference["output"])

    def test_zigzag_is_a_permutation(self):
        order = zigzag_order()
        assert sorted(order) == list(range(64))
        assert order[:4] == [0, 1, 8, 16]

    def test_phases_alternate(self):
        run = TwoPassTransform(blocks=2, frames=3, seed=0).record()
        labels = [marker.label for marker in run.phases]
        assert labels == ["transform", "quantize"] * 3

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            TwoPassTransform(blocks=0)


class TestPhasedFFT:
    def test_matches_reference(self):
        run = PhasedFFT(n=128, transforms=2, seed=5).record()
        assert np.array_equal(
            run.outputs["fft_work"], reference_fft(128, 2, 5)
        )

    def test_phase_labels(self):
        run = PhasedFFT(n=64, transforms=1).record()
        assert run.phase_labels() == [
            "bitrev", "stage0", "stage1", "stage2", "stage3", "stage4",
            "stage5",
        ]

    def test_validation(self):
        with pytest.raises(ValueError, match="power of two"):
            PhasedFFT(n=48)
        with pytest.raises(ValueError, match="transforms"):
            PhasedFFT(n=64, transforms=0)


class TestRegistry:
    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("packet", {"batches": 1, "rounds": 1}),
            ("twopass", {"blocks": 2, "frames": 1}),
            ("fft_phased", {"n": 64, "transforms": 1}),
        ],
    )
    def test_new_workloads_registered(self, name, kwargs):
        assert name in available_workloads()
        run = make_workload(name, seed=0, **kwargs).record()
        assert len(run.trace) > 0
        assert run.phases

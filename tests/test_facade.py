"""The ``repro`` facade: every advertised name imports and is real.

The facade (``src/repro/__init__.py``) is the supported front door of
the stack; these tests pin its contract so a rename deeper in the tree
cannot silently break ``from repro import X``.
"""

from __future__ import annotations

import importlib
import subprocess
import sys

import repro


def test_all_matches_export_table():
    """``__all__`` is exactly the lazy-export table, sorted."""
    assert repro.__all__ == sorted(repro._EXPORTS)


def test_every_facade_name_resolves():
    """Each name in ``__all__`` imports and matches its home module."""
    for name in repro.__all__:
        value = getattr(repro, name)
        home = importlib.import_module(repro._EXPORTS[name])
        assert value is getattr(home, name), name


def test_facade_names_cache_after_first_access():
    """PEP 562 resolution caches into the module dict."""
    first = repro.CacheGeometry
    assert repro.__dict__["CacheGeometry"] is first


def test_unknown_name_raises_attribute_error():
    try:
        repro.definitely_not_exported
    except AttributeError as error:
        assert "definitely_not_exported" in str(error)
    else:  # pragma: no cover - defends the assertion
        raise AssertionError("expected AttributeError")


def test_dir_advertises_the_facade():
    names = dir(repro)
    for name in repro.__all__:
        assert name in names


def test_import_repro_is_lazy():
    """``import repro`` must not drag in the heavy subsystems."""
    script = (
        "import sys; import repro; "
        "heavy = [m for m in sys.modules "
        "if m.startswith(('repro.sim', 'repro.fleet', "
        "'repro.layout'))]; "
        "sys.exit(1 if heavy else 0)"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script], capture_output=True
    )
    assert proc.returncode == 0, proc.stderr.decode()


def test_facade_covers_headline_types():
    """The names the README quickstarts use stay exported."""
    for name in (
        "CacheGeometry",
        "ColumnBroker",
        "FleetService",
        "ServiceConfig",
        "LoadGenConfig",
        "SweepEngine",
        "make_workload",
    ):
        assert name in repro.__all__, name

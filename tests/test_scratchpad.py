"""Tests for scratchpad models: dedicated SRAM and column emulation."""

import pytest

from repro.cache.column_cache import ColumnCache
from repro.cache.geometry import CacheGeometry
from repro.cache.scratchpad import ColumnScratchpad, ScratchpadMemory
from repro.mem.address import AddressRange
from repro.utils.bitvector import ColumnMask


class TestScratchpadMemory:
    def test_copy_in_and_access(self):
        pad = ScratchpadMemory(capacity=1024)
        pad.copy_in("a", AddressRange(0x1000, 128))
        assert pad.access(0x1040)
        assert not pad.access(0x2000)
        assert pad.stats.accesses == 1

    def test_capacity_enforced(self):
        pad = ScratchpadMemory(capacity=100)
        with pytest.raises(ValueError, match="does not fit"):
            pad.copy_in("a", AddressRange(0, 128))

    def test_overlap_rejected(self):
        pad = ScratchpadMemory(capacity=1024)
        pad.copy_in("a", AddressRange(0, 128))
        with pytest.raises(ValueError, match="overlaps"):
            pad.copy_in("b", AddressRange(64, 128))

    def test_duplicate_name_rejected(self):
        pad = ScratchpadMemory(capacity=1024)
        pad.copy_in("a", AddressRange(0, 64))
        with pytest.raises(ValueError, match="already"):
            pad.copy_in("a", AddressRange(512, 64))

    def test_copy_out_frees_space(self):
        pad = ScratchpadMemory(capacity=128)
        pad.copy_in("a", AddressRange(0, 128))
        pad.copy_out("a")
        assert pad.free_bytes == 128
        pad.copy_in("b", AddressRange(512, 128))

    def test_copy_out_unknown(self):
        pad = ScratchpadMemory(capacity=128)
        with pytest.raises(KeyError):
            pad.copy_out("nope")

    def test_copy_accounting(self):
        pad = ScratchpadMemory(capacity=1024)
        pad.copy_in("a", AddressRange(0, 128))
        pad.copy_out("a")
        assert pad.stats.bytes_copied_in == 128
        assert pad.stats.bytes_copied_out == 128

    def test_contains_operator(self):
        pad = ScratchpadMemory(capacity=1024)
        pad.copy_in("a", AddressRange(0x100, 16))
        assert 0x100 in pad
        assert 0x200 not in pad


class TestColumnScratchpad:
    def geometry(self):
        return CacheGeometry(line_size=16, sets=32, columns=4)

    def test_preload_pins_region(self):
        cache = ColumnCache(self.geometry())
        pad = ColumnScratchpad(
            cache, AddressRange(0x4000, 512), ColumnMask.of(3, width=4)
        )
        assert pad.preload() == 32
        assert pad.is_pinned()

    def test_pinned_survives_competing_traffic(self):
        """The core guarantee: no other mask overlaps the dedicated
        column, so pinned lines are never evicted."""
        cache = ColumnCache(self.geometry())
        pad = ColumnScratchpad(
            cache, AddressRange(0x4000, 512), ColumnMask.of(3, width=4)
        )
        pad.preload()
        other = ColumnMask.of(0, 1, 2, width=4)
        for block in range(1000):
            cache.access(0x10000 + block * 16, mask=other)
        assert pad.is_pinned()
        # And accesses to the region always hit.
        assert cache.access(0x4000, mask=ColumnMask.of(3, width=4)).hit

    def test_overlapping_traffic_breaks_pinning(self):
        """Negative control: traffic allowed into the dedicated column
        does evict (misconfigured tints would do this)."""
        cache = ColumnCache(self.geometry())
        pad = ColumnScratchpad(
            cache, AddressRange(0x4000, 512), ColumnMask.of(3, width=4)
        )
        pad.preload()
        everything = ColumnMask.all_columns(4)
        for block in range(1000):
            cache.access(0x10000 + block * 16, mask=everything)
        assert not pad.is_pinned()
        assert pad.resident_line_count() < 32

    def test_region_larger_than_columns_rejected(self):
        cache = ColumnCache(self.geometry())
        with pytest.raises(ValueError, match="exceeds"):
            ColumnScratchpad(
                cache, AddressRange(0x4000, 1024), ColumnMask.of(3, width=4)
            )

    def test_two_columns_double_capacity(self):
        cache = ColumnCache(self.geometry())
        pad = ColumnScratchpad(
            cache,
            AddressRange(0x4000, 1024),
            ColumnMask.of(2, 3, width=4),
        )
        pad.preload()
        assert pad.is_pinned()

    def test_misaligned_region_rejected(self):
        """A region that double-maps some set cannot be scratchpad.

        512 bytes starting mid-line touch 33 lines, so one set receives
        two of them — those two lines would evict each other.
        """
        cache = ColumnCache(self.geometry())
        with pytest.raises(ValueError, match="one-to-one"):
            ColumnScratchpad(
                cache,
                AddressRange(0x4008, 512),
                ColumnMask.of(3, width=4),
            )

    def test_half_column_offset_region_accepted(self):
        """A line-aligned 512-byte region at any line offset covers
        each set exactly once (the mapping wraps) — still scratchpad."""
        cache = ColumnCache(self.geometry())
        pad = ColumnScratchpad(
            cache, AddressRange(0x4100, 512), ColumnMask.of(3, width=4)
        )
        pad.preload()
        assert pad.is_pinned()

    def test_empty_mask_rejected(self):
        cache = ColumnCache(self.geometry())
        with pytest.raises(ValueError, match="at least one column"):
            ColumnScratchpad(
                cache, AddressRange(0x4000, 512), ColumnMask.none(4)
            )

    def test_mask_width_checked(self):
        cache = ColumnCache(self.geometry())
        with pytest.raises(ValueError, match="width"):
            ColumnScratchpad(
                cache, AddressRange(0x4000, 512), ColumnMask.of(1, width=8)
            )

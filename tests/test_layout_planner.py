"""Tests for partition, assignment realization and the end-to-end planner."""

import pytest

from repro.layout.algorithm import DataLayoutPlanner, LayoutConfig, plan_layout
from repro.layout.assignment import Disposition
from repro.layout.partition import split_for_columns, units_of
from repro.mem.address import AddressRange
from repro.mem.page_table import PageTable
from repro.mem.symbols import SymbolTable, Variable, VariableKind
from repro.mem.tint import TintTable
from repro.trace.trace import TraceBuilder
from repro.utils.bitvector import ColumnMask
from repro.workloads.base import Workload
from repro.workloads.mpeg import DequantRoutine, IdctRoutine


class TestSplitForColumns:
    def test_oversized_arrays_split(self):
        table = SymbolTable()
        table.add(Variable("big", AddressRange(0, 2048), element_size=2))
        table.add(Variable("small", AddressRange(4096, 64), element_size=2))
        units = split_for_columns(table, 512)
        assert [v.name for v in units] == [
            "big#0", "big#1", "big#2", "big#3", "small",
        ]

    def test_scalars_never_split(self):
        table = SymbolTable()
        table.add(
            Variable("s", AddressRange(0, 1024), element_size=1024,
                     kind=VariableKind.SCALAR)
        )
        units = split_for_columns(table, 512)
        assert [v.name for v in units] == ["s"]

    def test_units_of(self):
        table = SymbolTable()
        table.add(Variable("big", AddressRange(0, 1024), element_size=2))
        units = split_for_columns(table, 512)
        assert [v.name for v in units_of(units, "big")] == ["big#0", "big#1"]


class _TwoStream(Workload):
    """Two interleaved streams plus one hot table — a canonical case."""

    def __init__(self, **kwargs):
        super().__init__(name="two_stream", **kwargs)
        self.stream_a = self.array("stream_a", 128)
        self.stream_b = self.array("stream_b", 128)
        self.table = self.array("table", 16)

    def run(self) -> None:
        self.begin_phase("main")
        for index in range(128):
            _ = self.stream_a[index]
            _ = self.stream_b[index]
            _ = self.table[index % 16]
        self.end_phase()


class TestPlanner:
    def config(self, scratchpad=0, **kwargs):
        return LayoutConfig(
            columns=4,
            column_bytes=512,
            scratchpad_columns=scratchpad,
            **kwargs,
        )

    def test_interfering_variables_separated(self):
        run = _TwoStream().record()
        assignment = DataLayoutPlanner(self.config()).plan(run)
        masks = {
            name: assignment.mask_for(name)
            for name in ("stream_a", "stream_b", "table")
        }
        # All three interleave heavily: pairwise different columns.
        assert not masks["stream_a"].overlaps(masks["stream_b"])
        assert not masks["stream_a"].overlaps(masks["table"])
        assert assignment.predicted_cost == 0

    def test_scratchpad_pins_hot_table(self):
        run = _TwoStream().record()
        assignment = DataLayoutPlanner(self.config(scratchpad=1)).plan(run)
        assert assignment.disposition_of("table") is Disposition.SCRATCHPAD
        assert assignment.mask_for("table") == ColumnMask.of(3, width=4)

    def test_all_scratchpad_leaves_oversized_uncached(self):
        run = IdctRoutine(blocks=4).record()
        config = LayoutConfig(
            columns=4, column_bytes=512, scratchpad_columns=4,
            split_oversized=False,
        )
        assignment = DataLayoutPlanner(config).plan(run)
        assert assignment.disposition_of("coeffs") is Disposition.UNCACHED
        assert assignment.disposition_of("costab") is Disposition.SCRATCHPAD

    def test_forced_scratchpad(self):
        run = _TwoStream().record()
        config = LayoutConfig(
            columns=4, column_bytes=512, scratchpad_columns=1,
            forced_scratchpad=("stream_a",),
        )
        assignment = DataLayoutPlanner(config).plan(run)
        assert assignment.disposition_of("stream_a") is Disposition.SCRATCHPAD

    def test_forced_unknown_rejected(self):
        run = _TwoStream().record()
        config = LayoutConfig(
            columns=4, column_bytes=512, scratchpad_columns=1,
            forced_scratchpad=("nope",),
        )
        with pytest.raises(KeyError):
            DataLayoutPlanner(config).plan(run)

    def test_forced_without_scratchpad_rejected(self):
        run = _TwoStream().record()
        config = LayoutConfig(
            columns=4, column_bytes=512, scratchpad_columns=0,
            forced_scratchpad=("table",),
        )
        with pytest.raises(ValueError):
            DataLayoutPlanner(config).plan(run)

    def test_forced_too_big_rejected(self):
        run = IdctRoutine(blocks=4).record()
        config = LayoutConfig(
            columns=4, column_bytes=512, scratchpad_columns=1,
            forced_scratchpad=("coeffs",), split_oversized=False,
        )
        with pytest.raises(ValueError, match="does not fit"):
            DataLayoutPlanner(config).plan(run)

    def test_whole_variable_pinning_is_atomic(self):
        """With pin_subarrays=False a split variable is pinned all or
        nothing (the paper's model)."""
        run = DequantRoutine().record()  # coeffs is 1536B -> 3 subarrays
        config = LayoutConfig(
            columns=4, column_bytes=512, scratchpad_columns=2,
            split_oversized=True, pin_subarrays=False,
        )
        assignment = DataLayoutPlanner(config).plan(run)
        dispositions = {
            assignment.disposition_of(f"coeffs#{i}") for i in range(3)
        }
        assert len(dispositions) == 1  # all the same

    def test_subarray_pinning_extension(self):
        run = DequantRoutine().record()
        config = LayoutConfig(
            columns=4, column_bytes=512, scratchpad_columns=2,
            split_oversized=True, pin_subarrays=True,
        )
        assignment = DataLayoutPlanner(config).plan(run)
        pinned = {
            p.name for p in assignment.units_with(Disposition.SCRATCHPAD)
        }
        # qtable plus at least one coeffs subarray fit in 1 KB.
        assert "qtable" in pinned
        assert any(name.startswith("coeffs#") for name in pinned)

    def test_scratchpad_capacity_respected(self):
        for scratchpad in (1, 2, 3, 4):
            run = DequantRoutine().record()
            config = LayoutConfig(
                columns=4, column_bytes=512,
                scratchpad_columns=scratchpad,
            )
            assignment = DataLayoutPlanner(config).plan(run)
            assert (
                assignment.scratchpad_bytes_used()
                <= scratchpad * 512
            )

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LayoutConfig(columns=4, column_bytes=512, scratchpad_columns=5)
        with pytest.raises(ValueError):
            LayoutConfig(columns=4, column_bytes=512, weight_metric="max")

    def test_plan_layout_convenience(self):
        run = _TwoStream().record()
        assignment = plan_layout(run, columns=4, column_bytes=512)
        assert assignment.columns == 4

    @pytest.mark.parametrize("metric", ["min", "sum", "unweighted"])
    def test_weight_metrics_run(self, metric):
        run = _TwoStream().record()
        config = LayoutConfig(
            columns=4, column_bytes=512, weight_metric=metric
        )
        assignment = DataLayoutPlanner(config).plan(run)
        assert len(assignment.placements) >= 3


class TestAssignmentRealization:
    def test_realize_installs_tints(self):
        run = _TwoStream().record()
        assignment = DataLayoutPlanner(
            LayoutConfig(columns=4, column_bytes=512, scratchpad_columns=1)
        ).plan(run)
        page_table = PageTable(page_size=64)
        tint_table = TintTable(columns=4)
        unit_tints = assignment.realize(page_table, tint_table)
        # Every cached/scratchpad unit got a tint whose mask matches.
        for name, tint in unit_tints.items():
            assert tint_table.mask_of(tint) == assignment.mask_for(name)
        # Pages of the pinned table carry its tint.
        table_variable = run.memory_map.get("table")
        for vpn in table_variable.range.pages(64):
            assert page_table.entry(vpn).tint == unit_tints["table"]

    def test_realize_uncached_pages(self):
        run = IdctRoutine(blocks=4).record()
        config = LayoutConfig(
            columns=4, column_bytes=512, scratchpad_columns=4,
            split_oversized=False,
        )
        assignment = DataLayoutPlanner(config).plan(run)
        page_table = PageTable(page_size=64)
        tint_table = TintTable(columns=4)
        assignment.realize(page_table, tint_table)
        coeffs = run.memory_map.get("coeffs")
        for vpn in coeffs.range.pages(64):
            assert not page_table.entry(vpn).cached

    def test_realize_rejects_shared_pages(self):
        units = SymbolTable()
        units.add(Variable("a", AddressRange(0, 64)))
        units.add(Variable("b", AddressRange(64, 64)))
        from repro.layout.assignment import (
            ColumnAssignment,
            VariablePlacement,
        )

        placements = {
            "a": VariablePlacement(
                units.get("a"), Disposition.CACHED, ColumnMask.of(0, width=2)
            ),
            "b": VariablePlacement(
                units.get("b"), Disposition.CACHED, ColumnMask.of(1, width=2)
            ),
        }
        assignment = ColumnAssignment(
            columns=2,
            column_bytes=512,
            line_size=16,
            scratchpad_mask=ColumnMask.none(2),
            placements=placements,
            layout_symbols=units,
        )
        page_table = PageTable(page_size=256)  # both units in page 0
        tint_table = TintTable(columns=2)
        with pytest.raises(ValueError, match="share page"):
            assignment.realize(page_table, tint_table)

    def test_describe_renders(self):
        run = _TwoStream().record()
        assignment = plan_layout(run, columns=4, column_bytes=512)
        text = assignment.describe()
        assert "stream_a" in text and "disposition" in text

    def test_column_utilization(self):
        run = _TwoStream().record()
        assignment = plan_layout(run, columns=4, column_bytes=512)
        usage = assignment.column_utilization()
        assert len(usage) == 4
        assert sum(usage) == sum(
            p.variable.size for p in assignment.placements.values()
        )

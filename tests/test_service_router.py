"""Properties of the tenant-hash router and shard-fleet invariants.

Two families, both hypothesis-driven:

* **Routing stability** — rendezvous hashing's defining property:
  changing the shard count re-routes exactly the tenants whose route
  involves the added/removed shard; everyone else stays put.  Pins
  (live migration) overlay the hash and survive resizes only while
  their target shard exists.
* **Disjoint columns under churn** — an arbitrary interleaving of
  admissions (router-placed), departures, migrations and serving
  segments across a two-shard fleet never leaves a cache column
  granted to two tenants on any shard.
"""

import functools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.fleet import FleetConfig, TenantSpec
from repro.fleet.service import ShardServer, TenantHashRouter, shard_score
from repro.sim.config import MULTITASK_TIMING
from repro.workloads.suite import make_workload

TENANTS = st.lists(
    st.text(min_size=1, max_size=16),
    unique=True,
    min_size=1,
    max_size=40,
)


class TestRendezvousStability:
    @given(tenants=TENANTS, shards=st.integers(1, 8))
    def test_growing_moves_only_tenants_onto_the_new_shard(
        self, tenants, shards
    ):
        small = TenantHashRouter(shards)
        big = TenantHashRouter(shards + 1)
        for tenant in tenants:
            before = small.rendezvous(tenant)
            after = big.rendezvous(tenant)
            if after != before:
                assert after == shards  # moved onto the added shard

    @given(tenants=TENANTS, shards=st.integers(2, 8))
    def test_shrinking_moves_only_the_removed_shards_tenants(
        self, tenants, shards
    ):
        big = TenantHashRouter(shards)
        small = TenantHashRouter(shards - 1)
        for tenant in tenants:
            before = big.rendezvous(tenant)
            after = small.rendezvous(tenant)
            if before != shards - 1:
                assert after == before  # survivors stay put

    @given(tenants=TENANTS, shards=st.integers(1, 8))
    def test_route_is_the_argmax_of_shard_score(self, tenants, shards):
        router = TenantHashRouter(shards)
        for tenant in tenants:
            routed = router.route(tenant)
            best = max(
                range(shards),
                key=lambda shard: shard_score(tenant, shard),
            )
            assert routed == best

    @given(tenant=st.text(min_size=1, max_size=16))
    def test_route_is_deterministic_across_instances(self, tenant):
        assert TenantHashRouter(5).route(tenant) == TenantHashRouter(
            5
        ).route(tenant)


class TestPins:
    @given(
        tenants=TENANTS,
        shards=st.integers(2, 6),
        data=st.data(),
    )
    def test_pin_overrides_and_unpin_restores(
        self, tenants, shards, data
    ):
        router = TenantHashRouter(shards)
        for tenant in tenants:
            hashed = router.route(tenant)
            target = data.draw(
                st.integers(0, shards - 1), label="pin target"
            )
            router.pin(tenant, target)
            assert router.route(tenant) == target
            router.unpin(tenant)
            assert router.route(tenant) == hashed

    @given(tenants=TENANTS, shards=st.integers(2, 6))
    def test_resize_drops_pins_to_vanished_shards(
        self, tenants, shards
    ):
        router = TenantHashRouter(shards)
        for tenant in tenants:
            router.pin(tenant, shards - 1)
        router.set_shard_count(shards - 1)
        assert router.pins == {}
        small = TenantHashRouter(shards - 1)
        for tenant in tenants:
            assert router.route(tenant) == small.route(tenant)

    @given(tenants=TENANTS, shards=st.integers(2, 6))
    def test_resize_keeps_valid_pins(self, tenants, shards):
        router = TenantHashRouter(shards)
        for tenant in tenants:
            router.pin(tenant, 0)
        router.set_shard_count(shards + 3)
        for tenant in tenants:
            assert router.route(tenant) == 0


# ----------------------------------------------------------------------
# Fleet churn: disjoint columns on every shard after every operation.
# ----------------------------------------------------------------------

TIMING = MULTITASK_TIMING
CONFIG = FleetConfig(quantum_instructions=64, window_instructions=512)


@functools.lru_cache(maxsize=None)
def _run_pool():
    return (
        make_workload("crc32", seed=11, message_bytes=128).record(),
        make_workload(
            "histogram", seed=12, sample_count=128, bin_count=16
        ).record(),
        make_workload(
            "fir", seed=13, signal_length=128, tap_count=8
        ).record(),
    )


OPS = st.lists(
    st.tuples(
        st.sampled_from(["admit", "depart", "migrate", "advance"]),
        st.integers(0, 31),
    ),
    max_size=30,
)


@settings(max_examples=25, deadline=None)
@given(ops=OPS)
def test_disjoint_columns_survive_arbitrary_churn(ops):
    geometry = CacheGeometry(line_size=16, sets=32, columns=4)
    router = TenantHashRouter(2)
    shards = [
        ShardServer(index, geometry, TIMING, CONFIG)
        for index in range(2)
    ]
    pool = _run_pool()
    homes: dict[str, int] = {}
    counter = 0

    for action, arg in ops:
        if action == "admit":
            name = f"tenant-{counter:04d}"
            spec = TenantSpec(
                name=name,
                run=pool[arg % len(pool)],
                priority=1 + arg % 3,
                address_offset=counter << 32,
            )
            counter += 1
            home = router.route(name)
            if shards[home].admit(spec):
                homes[name] = home
        elif action == "depart" and homes:
            name = sorted(homes)[arg % len(homes)]
            shards[homes.pop(name)].depart(name)
            router.unpin(name)
        elif action == "migrate" and homes:
            name = sorted(homes)[arg % len(homes)]
            source = homes[name]
            target = 1 - source
            migrant = shards[source].extract(name)
            if shards[target].inject(migrant):
                router.pin(name, target)
                homes[name] = target
            elif shards[source].inject(migrant):
                router.unpin(name)  # bounced back home
            else:
                del homes[name]  # no shard can take it back
        else:
            for shard in shards:
                shard.advance()

        for shard in shards:
            shard.broker.check_disjoint()  # raises on violation
        granted = {
            name
            for shard in shards
            for name in shard.broker.grants
        }
        assert granted == set(homes)
        # The router always knows where every resident lives: the
        # hash route for tenants it placed, the pin for migrants.
        for name, home in homes.items():
            assert router.route(name) == home

"""Tests for the full reference memory system (TLB -> tint -> cache)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.mem.page_table import PageTable
from repro.mem.tint import DEFAULT_TINT, TintTable
from repro.sim.config import TimingConfig
from repro.sim.memory_system import MemorySystem
from repro.utils.bitvector import ColumnMask

TIMING = TimingConfig(
    miss_penalty=10, uncached_penalty=30, preload_line_cycles=5,
    tlb_miss_cycles=3,
)


def build(columns=4, page_size=64):
    geometry = CacheGeometry(line_size=16, sets=32, columns=columns)
    page_table = PageTable(page_size=page_size)
    tint_table = TintTable(columns=columns)
    system = MemorySystem(
        geometry=geometry,
        timing=TIMING,
        page_table=page_table,
        tint_table=tint_table,
    )
    return system, page_table, tint_table


class TestAccessPath:
    def test_default_tint_behaves_like_standard_cache(self):
        system, _, _ = build()
        miss = system.access(0x1000)
        hit = system.access(0x1000)
        assert not miss.hit and hit.hit
        assert miss.cycles == 1 + TIMING.miss_penalty
        assert hit.cycles == 1

    def test_uncached_page_bypasses(self):
        system, page_table, _ = build()
        page_table.set_cached(0x1000 // 64, False)
        outcome = system.access(0x1000)
        assert outcome.bypassed and not outcome.cached
        assert outcome.cycles == 1 + TIMING.uncached_penalty
        assert not system.cache.contains(0x1000)

    def test_tint_steers_replacement(self):
        system, page_table, tint_table = build()
        tint_table.define("blue", ColumnMask.of(2, width=4))
        page_table.set_tint(0x1000 // 64, "blue")
        system.access(0x1000)
        assert system.cache.find_line(0x1000).column == 2

    def test_tint_remap_takes_effect_without_page_table_traffic(self):
        """The fast path of Figure 3: one tint-table write."""
        system, page_table, tint_table = build()
        tint_table.define("blue", ColumnMask.of(2, width=4))
        page_table.set_tint(0x1000 // 64, "blue")
        version_before = page_table.version
        tint_table.remap("blue", ColumnMask.of(3, width=4))
        assert page_table.version == version_before
        system.access(0x1000)
        assert system.cache.find_line(0x1000).column == 3

    def test_stale_tlb_keeps_old_tint_until_flush(self):
        """The slow path of Figure 3: re-tinting requires a flush."""
        system, page_table, tint_table = build()
        tint_table.define("blue", ColumnMask.of(1, width=4))
        system.access(0x1000)  # TLB caches the default tint
        page_table.set_tint(0x1000 // 64, "blue")
        system.access(0x2000)  # unrelated
        system.access(0x1040)  # same page: stale default tint served
        assert system.tlb.lookup(0x1000).tint == DEFAULT_TINT
        system.tlb.flush()
        assert system.tlb.lookup(0x1000).tint == "blue"

    def test_tlb_miss_cost_charged(self):
        system, _, _ = build()
        first = system.access_with_tlb_cost(0x1000)
        second = system.access_with_tlb_cost(0x1004)
        assert first.cycles == 1 + TIMING.miss_penalty + TIMING.tlb_miss_cycles
        assert second.cycles == 1  # same page, same line

    def test_preload_region(self):
        system, page_table, tint_table = build()
        tint_table.define("pad", ColumnMask.of(3, width=4))
        for vpn in range(0x4000 // 64, 0x4200 // 64):
            page_table.set_tint(vpn, "pad")
        cycles = system.preload_region(0x4000, 512)
        assert cycles == 32 * TIMING.preload_line_cycles
        for line in range(0x4000, 0x4200, 16):
            resident = system.cache.find_line(line)
            assert resident is not None and resident.column == 3

    def test_mismatched_tint_table_rejected(self):
        geometry = CacheGeometry(line_size=16, sets=32, columns=4)
        with pytest.raises(ValueError, match="column"):
            MemorySystem(
                geometry=geometry,
                timing=TIMING,
                page_table=PageTable(page_size=64),
                tint_table=TintTable(columns=8),
            )

    def test_cycle_accumulation(self):
        system, _, _ = build()
        system.access(0x1000)
        system.access(0x1000)
        assert system.cycles == (1 + TIMING.miss_penalty) + 1
        assert system.accesses == 2

"""The snapshot layer: occupancy, broker maps, executor observers.

The inspection contract has two halves: snapshots must report the
truth (column counts match the cache backends, broker owner maps
match the disjoint grants) and observing must be free (a run's
results are bit-identical with and without an observer wired in).
"""

import numpy as np
import pytest

from repro.cache.fastsim import FastColumnCache
from repro.cache.geometry import CacheGeometry
from repro.fleet import (
    ColumnBroker,
    FleetConfig,
    FleetEvent,
    FleetExecutor,
    FleetTrace,
    TenantSpec,
)
from repro.inspect import (
    BrokerSnapshot,
    DetectorSnapshot,
    ExecutorWindowSnapshot,
    FleetSegmentSnapshot,
    column_occupancy,
    miss_rate_timeline,
)
from repro.layout.algorithm import DataLayoutPlanner, LayoutConfig
from repro.runtime import AdaptiveConfig, AdaptiveExecutor, PhaseDetector
from repro.sim.config import MULTITASK_TIMING, TimingConfig
from repro.sim.engine.batched import LockstepCache
from repro.sim.executor import TraceExecutor
from repro.workloads.suite import make_workload
from repro.workloads.transform import PhasedFFT

TIMING = TimingConfig(miss_penalty=10, uncached_penalty=25)
LAYOUT = LayoutConfig(columns=4, column_bytes=512, line_size=16)


@pytest.fixture(scope="module")
def run():
    return make_workload("crc32", seed=3, message_bytes=512).record()


@pytest.fixture(scope="module")
def assignment(run):
    return DataLayoutPlanner(LAYOUT).plan(run)


class TestColumnOccupancy:
    def test_cold_caches_are_empty(self):
        geometry = CacheGeometry(line_size=16, sets=32, columns=4)
        assert column_occupancy(FastColumnCache(geometry)) == (0,) * 4
        assert column_occupancy(LockstepCache(geometry)) == (0,) * 4

    def test_backends_agree_after_identical_runs(self):
        geometry = CacheGeometry(line_size=16, sets=8, columns=4)
        blocks = [(seed * 37) % 64 for seed in range(200)]
        scalar = FastColumnCache(geometry)
        scalar.run(blocks, uniform_mask=0b1111)
        batched = LockstepCache(geometry)
        batched.run(np.array(blocks, dtype=np.int64), uniform_mask=0b1111)
        scalar_counts = column_occupancy(scalar)
        assert scalar_counts == column_occupancy(batched)
        assert all(0 <= count <= 8 for count in scalar_counts)
        assert sum(scalar_counts) > 0

    def test_rejects_unknown_objects(self):
        with pytest.raises(TypeError):
            column_occupancy(object())


class TestMissRateTimeline:
    def test_from_window_samples(self):
        class Sample:
            def __init__(self, index, accesses, misses):
                self.window_index = index
                self.accesses = accesses
                self.misses = misses

        timeline = miss_rate_timeline(
            [Sample(0, 10, 5), Sample(1, 0, 0), Sample(2, 4, 1)]
        )
        assert timeline == ((0, 0.5), (1, 0.0), (2, 0.25))


class TestDetectorSnapshot:
    def test_snapshot_tracks_windows_and_boundaries(self):
        detector = PhaseDetector(hysteresis_windows=2)
        detector.observe_window([1, 2, 3], misses=1)
        detector.observe_window([1000, 2000, 3000], misses=3)
        snapshot = detector.snapshot()
        assert isinstance(snapshot, DetectorSnapshot)
        assert snapshot.windows == 2
        assert snapshot.boundaries == (1,)
        assert snapshot.in_hysteresis
        exported = snapshot.as_dict()
        assert exported["windows"] == 2
        assert exported["boundaries"] == [1]

    def test_empty_detector(self):
        snapshot = PhaseDetector().snapshot()
        assert snapshot.windows == 0
        assert snapshot.boundaries == ()
        assert not snapshot.in_hysteresis


class TestBrokerSnapshot:
    def test_owner_map_matches_grants(self, run):
        geometry = CacheGeometry(line_size=16, sets=32, columns=8)
        broker = ColumnBroker(geometry, MULTITASK_TIMING)
        broker.admit("a", run, priority=1)
        broker.admit("b", run, priority=2)
        snapshot = broker.snapshot()
        assert isinstance(snapshot, BrokerSnapshot)
        assert snapshot.columns == 8
        for name, bits in snapshot.grants:
            for column in range(8):
                if bits >> column & 1:
                    assert snapshot.owners[column] == name
        owned = sum(
            1 for owner in snapshot.owners if owner is not None
        )
        assert owned + snapshot.free_columns == 8
        assert dict(snapshot.priorities) == {"a": 1, "b": 2}
        exported = snapshot.as_dict()
        assert exported["free_columns"] == snapshot.free_columns


class TestRunWindowed:
    def test_matches_monolithic_run(self, run, assignment):
        executor = TraceExecutor(TIMING)
        whole = executor.run(run.trace, assignment)
        snapshots = []
        windowed = executor.run_windowed(
            run.trace,
            assignment,
            window_accesses=256,
            observer=snapshots.append,
        )
        assert windowed.hits == whole.hits
        assert windowed.misses == whole.misses
        assert windowed.cycles == whole.cycles
        assert windowed.setup_cycles == whole.setup_cycles
        assert windowed.name == whole.name
        assert snapshots, "observer saw no windows"
        assert all(
            isinstance(s, ExecutorWindowSnapshot) for s in snapshots
        )
        assert sum(s.accesses for s in snapshots) == len(run.trace)
        assert sum(s.misses for s in snapshots) >= whole.misses
        sets = TraceExecutor.geometry_for(assignment).sets
        for snapshot in snapshots:
            assert len(snapshot.column_occupancy) == LAYOUT.columns
            assert all(
                0 <= count <= sets
                for count in snapshot.column_occupancy
            )
        # Occupancy only grows: nothing evicts to empty.
        first = sum(snapshots[0].column_occupancy)
        last = sum(snapshots[-1].column_occupancy)
        assert last >= first > 0

    def test_observer_is_optional(self, run, assignment):
        executor = TraceExecutor(TIMING)
        result = executor.run_windowed(
            run.trace, assignment, window_accesses=1024
        )
        assert result.accesses == len(run.trace)


class TestAdaptiveObserver:
    def test_snapshots_do_not_change_results(self):
        run = PhasedFFT(seed=5).record()
        executor = AdaptiveExecutor(
            LAYOUT,
            TIMING,
            AdaptiveConfig(window_accesses=256),
        )
        plain = executor.run(run)
        snapshots = []
        observed = executor.run(run, observer=snapshots.append)
        assert observed.result.cycles == plain.result.cycles
        assert observed.result.misses == plain.result.misses
        assert len(snapshots) == len(observed.observations)
        remap_windows = {
            event.window_index for event in observed.events
        }
        flagged = {
            s.window_index for s in snapshots if s.remapped
        }
        assert flagged == remap_windows
        for snapshot in snapshots:
            assert snapshot.detector is not None
            assert snapshot.detector.windows == (
                snapshot.window_index + 1
            )


class TestFleetObserver:
    def test_segment_snapshots(self):
        specs = [
            TenantSpec(
                name=f"t{i}",
                run=make_workload(
                    "crc32", seed=20 + i, message_bytes=256
                ).record(),
                priority=1,
                address_offset=i << 32,
            )
            for i in range(2)
        ]
        geometry = CacheGeometry(line_size=16, sets=32, columns=8)
        fleet = FleetTrace(
            events=tuple(
                FleetEvent(time=0, kind="arrival", spec=spec)
                for spec in specs
            ),
            horizon_instructions=20_000,
        )
        executor = FleetExecutor(
            geometry,
            MULTITASK_TIMING,
            FleetConfig(
                quantum_instructions=128, window_instructions=2048
            ),
        )
        snapshots = []
        plain = executor.run(fleet)
        observed = executor.run(fleet, observer=snapshots.append)
        assert observed.segments == plain.segments
        assert len(snapshots) == observed.segments
        for snapshot in snapshots:
            assert isinstance(snapshot, FleetSegmentSnapshot)
            assert len(snapshot.column_occupancy) == 8
            names = {row.name for row in snapshot.tenants}
            granted = {name for name, _ in snapshot.broker.grants}
            assert names == granted
            # Disjoint grants: each owned column has exactly one owner.
            union = 0
            for _, bits in snapshot.broker.grants:
                assert union & bits == 0
                union |= bits
        for name, telemetry in observed.telemetry.items():
            plain_telemetry = plain.telemetry[name]
            assert telemetry.hits == plain_telemetry.hits
            assert telemetry.misses == plain_telemetry.misses

"""The columnar trace core: recorder, derived columns, on-disk format."""

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.trace import (
    ColumnarRecorder,
    ColumnarTrace,
    Trace,
    TraceBuilder,
    load_npz,
    open_npz,
)
from repro.trace.columnar import NO_VARIABLE


def small_trace() -> ColumnarTrace:
    recorder = ColumnarRecorder(name="unit")
    recorder.add_gap(2)
    recorder.append(0x1000, variable="a", size=2)
    recorder.append(0x2000, is_write=True, variable="b", size=4)
    recorder.append(0x3000)
    recorder.append_run(0x4000, count=3, stride=8, variable="a")
    return recorder.build()


class TestRecorder:
    def test_trace_is_the_columnar_class(self):
        assert Trace is ColumnarTrace

    def test_scalar_appends_match_legacy_builder(self):
        recorder = ColumnarRecorder(name="t", chunk_size=2)  # force seals
        legacy = TraceBuilder(name="t")
        for builder in (recorder, legacy):
            builder.add_gap(3)
            builder.append(0x10, variable="x", size=2)
            builder.append(0x20, is_write=True, variable="y")
            builder.add_gap(1)
            builder.append(0x30)
            builder.append(0x40, variable="x")
        a, b = recorder.build(), legacy.build()
        for column in (
            "addresses", "sizes", "writes", "gaps", "variable_ids"
        ):
            assert np.array_equal(
                getattr(a, column), getattr(b, column)
            ), column
        assert a.variable_names == b.variable_names

    def test_append_many_matches_scalar_loop(self):
        bulk = ColumnarRecorder(name="t")
        loop = ColumnarRecorder(name="t")
        addresses = [0x10, 0x20, 0x30]
        gaps = [0, 2, 1]
        bulk.add_gap(5)  # pending gap folds into the first access
        bulk.append_many(
            addresses, is_write=[False, True, False],
            variable="v", gaps=gaps, sizes=[2, 2, 4],
        )
        loop.add_gap(5)
        for address, write, gap, size in zip(
            addresses, [False, True, False], gaps, [2, 2, 4]
        ):
            loop.add_gap(gap)
            loop.append(address, is_write=write, variable="v", size=size)
        a, b = bulk.build(), loop.build()
        assert np.array_equal(a.gaps, b.gaps)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.writes, b.writes)
        assert np.array_equal(a.sizes, b.sizes)

    def test_append_many_does_not_mutate_caller_gaps(self):
        recorder = ColumnarRecorder()
        gaps = np.array([0, 1], dtype=np.int64)
        recorder.add_gap(7)
        recorder.append_many([1, 2], gaps=gaps)
        assert gaps[0] == 0  # pending fold happened on a copy

    def test_append_many_copies_caller_buffers(self):
        """Callers may reuse scratch arrays after appending."""
        recorder = ColumnarRecorder()
        buffer = np.array([16, 32], dtype=np.int64)
        flags = np.array([False, True])
        recorder.append_many(buffer, is_write=flags)
        buffer[:] = [999, 998]
        flags[:] = True
        recorder.append_many(buffer, is_write=flags)
        trace = recorder.build()
        assert trace.addresses.tolist() == [16, 32, 999, 998]
        assert trace.writes.tolist() == [False, True, True, True]

    def test_extend_reinterns_variables(self):
        first = ColumnarRecorder()
        first.append(0x10, variable="x")
        recorder = ColumnarRecorder()
        recorder.append(0x20, variable="y")
        recorder.extend(first.build())
        trace = recorder.build()
        assert trace.variables() == ["y", "x"]
        assert trace.variable_of(1) == "x"

    def test_validation(self):
        recorder = ColumnarRecorder()
        with pytest.raises(ValueError):
            recorder.append(-1)
        with pytest.raises(ValueError):
            recorder.add_gap(-1)
        with pytest.raises(ValueError):
            recorder.append_many([-5])
        with pytest.raises(ValueError):
            recorder.append_many([1, 2], gaps=[1])


class TestDerivedColumns:
    def test_blocks_for_cached_and_offset(self):
        trace = small_trace()
        blocks = trace.blocks_for(4)
        assert blocks is trace.blocks_for(4)  # cached
        assert np.array_equal(blocks, trace.addresses >> 4)
        shifted = trace.blocks_for(4, address_offset=1 << 8)
        assert np.array_equal(shifted, (trace.addresses + (1 << 8)) >> 4)
        unaligned = trace.blocks_for(4, address_offset=3)
        assert np.array_equal(unaligned, (trace.addresses + 3) >> 4)

    def test_slices_inherit_block_columns(self):
        trace = small_trace()
        parent = trace.blocks_for(4)
        window = trace.slice(1, 4)
        assert np.shares_memory(window.blocks_for(4), parent)

    def test_cumulative_instructions(self):
        trace = small_trace()
        expected = np.cumsum(trace.gaps + 1)
        assert np.array_equal(trace.cumulative_instructions, expected)

    def test_mask_bits_for(self):
        trace = small_trace()
        bits = trace.mask_bits_for({"a": 0b01, "b": 0b10}, default=0b11)
        expected = []
        for position in range(len(trace)):
            variable = trace.variable_of(position)
            expected.append({"a": 0b01, "b": 0b10}.get(variable, 0b11))
        assert bits.tolist() == expected
        # Unlabelled access (index 2) took the default.
        assert trace.variable_ids[2] == NO_VARIABLE
        assert bits[2] == 0b11

    def test_iter_chunks_are_views_covering_trace(self):
        trace = small_trace()
        pieces = list(trace.iter_chunks(2))
        assert sum(len(piece) for piece in pieces) == len(trace)
        assert np.shares_memory(pieces[0].addresses, trace.addresses)
        rejoined = np.concatenate(
            [piece.addresses for piece in pieces]
        )
        assert np.array_equal(rejoined, trace.addresses)


class TestNpzFormat:
    def test_round_trip(self, tmp_path):
        trace = small_trace()
        path = trace.save_npz(tmp_path / "t.npz")
        loaded = load_npz(path)
        for column in (
            "addresses", "sizes", "writes", "gaps", "variable_ids"
        ):
            assert np.array_equal(
                getattr(loaded, column), getattr(trace, column)
            ), column
        assert loaded.variable_names == trace.variable_names
        assert loaded.name == trace.name

    def test_extension_appended(self, tmp_path):
        trace = small_trace()
        path = trace.save_npz(tmp_path / "bare")
        assert path.name == "bare.npz"
        assert path.exists()

    def test_mmap_load_is_file_backed_and_equal(self, tmp_path):
        trace = small_trace()
        path = trace.save_npz(tmp_path / "t.npz")
        mapped = open_npz(path)
        assert isinstance(mapped.addresses.base, np.memmap)
        for column in (
            "addresses", "sizes", "writes", "gaps", "variable_ids"
        ):
            assert np.array_equal(
                getattr(mapped, column), getattr(trace, column)
            ), column

    def test_mmap_streaming_replay_matches_eager(self, tmp_path):
        from repro.sim.engine.batched import LockstepCache

        trace = small_trace().repeat(50)
        path = trace.save_npz(tmp_path / "long.npz")
        geometry = CacheGeometry(line_size=16, sets=4, columns=2)
        streamed = LockstepCache(geometry)
        for window in open_npz(path).iter_chunks(16):
            streamed.run(window.blocks_for(geometry.offset_bits))
        eager = LockstepCache(geometry)
        eager.run(trace.blocks_for(geometry.offset_bits))
        assert streamed.result() == eager.result()

    def test_rejects_non_trace_archives(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, whatever=np.arange(3))
        with pytest.raises(ValueError, match="not a columnar trace"):
            load_npz(path)

    def test_rejects_future_format_version(self, tmp_path):
        trace = small_trace()
        path = trace.save_npz(tmp_path / "t.npz")
        arrays = dict(np.load(path, allow_pickle=False))
        arrays["format_version"] = np.int64(99)
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="format version"):
            load_npz(path)

"""Tests for trace transformations (filter, relocate, concatenate).

These entry points feed the multitasking experiment and the trace CLI;
the key invariant is instruction-count bookkeeping: dropped accesses
fold their instructions into the following kept access's gap.
"""

import numpy as np
import pytest

from repro.mem.address import AddressRange
from repro.trace.filters import (
    concatenate,
    filter_by_range,
    filter_by_variable,
    relocate,
)
from repro.trace.trace import TraceBuilder


def build_two_variable_trace():
    builder = TraceBuilder(name="mixed")
    # a@0x100 (gap 1), b@0x200 (gap 2), a@0x104 (gap 0), b@0x204 (gap 3)
    builder.add_gap(1)
    builder.append(0x100, variable="a")
    builder.add_gap(2)
    builder.append(0x200, variable="b", is_write=True)
    builder.append(0x104, variable="a")
    builder.add_gap(3)
    builder.append(0x204, variable="b")
    return builder.build()


class TestFilterByVariable:
    def test_keeps_only_named_variables(self):
        trace = build_two_variable_trace()
        kept = filter_by_variable(trace, ["a"])
        assert len(kept) == 2
        assert list(kept.addresses) == [0x100, 0x104]

    def test_instruction_count_preserved_via_gap_folding(self):
        trace = build_two_variable_trace()
        kept = filter_by_variable(trace, ["b"])
        # b's accesses inherit the dropped a-instructions before them.
        assert len(kept) == 2
        assert kept.instruction_count == trace.instruction_count

    def test_write_flags_travel_with_accesses(self):
        trace = build_two_variable_trace()
        kept = filter_by_variable(trace, ["b"])
        assert list(kept.writes) == [True, False]

    def test_unknown_variable_keeps_nothing(self):
        trace = build_two_variable_trace()
        kept = filter_by_variable(trace, ["zzz"])
        assert len(kept) == 0

    def test_keeping_everything_returns_same_trace(self):
        trace = build_two_variable_trace()
        assert filter_by_variable(trace, ["a", "b"]) is trace


class TestFilterByRange:
    def test_range_selection(self):
        trace = build_two_variable_trace()
        kept = filter_by_range(trace, AddressRange(0x200, 0x100))
        assert list(kept.addresses) == [0x200, 0x204]

    def test_empty_range(self):
        trace = build_two_variable_trace()
        kept = filter_by_range(trace, AddressRange(0x900, 0x10))
        assert len(kept) == 0
        assert kept.instruction_count == 0


class TestRelocate:
    def test_shifts_every_address(self):
        trace = build_two_variable_trace()
        moved = relocate(trace, 0x1000)
        assert list(moved.addresses) == [
            address + 0x1000 for address in trace.addresses
        ]
        assert moved.instruction_count == trace.instruction_count

    def test_default_name_mentions_offset(self):
        trace = build_two_variable_trace()
        assert "+0x40" in relocate(trace, 0x40).name

    def test_negative_result_rejected(self):
        trace = build_two_variable_trace()
        with pytest.raises(ValueError, match="negative"):
            relocate(trace, -0x10000)


class TestConcatenate:
    def test_empty_input(self):
        joined = concatenate([])
        assert len(joined) == 0

    def test_join_preserves_order_and_instructions(self):
        first = build_two_variable_trace()
        second = relocate(build_two_variable_trace(), 0x10000)
        joined = concatenate([first, second], name="joined")
        assert len(joined) == len(first) + len(second)
        assert joined.instruction_count == (
            first.instruction_count + second.instruction_count
        )
        assert joined.name == "joined"

    def test_variable_tables_merge_by_name(self):
        first = build_two_variable_trace()
        second = build_two_variable_trace()
        joined = concatenate([first, second])
        assert sorted(joined.variable_names) == ["a", "b"]
        # Both halves reference the shared ids.
        first_ids = joined.variable_ids[: len(first)]
        second_ids = joined.variable_ids[len(first):]
        assert np.array_equal(first_ids, second_ids)

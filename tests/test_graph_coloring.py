"""Tests for the conflict graph, exact coloring and merging heuristic."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.coloring import (
    chromatic_number,
    color_with_k,
    exact_coloring,
    greedy_clique,
    greedy_coloring,
)
from repro.layout.graph import ConflictGraph, VertexInfo
from repro.layout.merge import (
    color_with_merging,
    optimal_cost_reference,
)


def make_graph(names, weighted_edges, internal=0):
    vertices = {
        name: VertexInfo(name=name, size=64, access_count=10,
                         members=(name,))
        for name in names
    }
    weights = {
        frozenset((a, b)): w for a, b, w in weighted_edges
    }
    return ConflictGraph(vertices, weights, internal_cost=internal)


def adjacency_of(edges, vertices):
    adjacency = {v: set() for v in vertices}
    for a, b in edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
    return adjacency


class TestConflictGraph:
    def test_zero_edges_dropped(self):
        graph = make_graph("ab", [("a", "b", 0)])
        assert graph.edge_count() == 0

    def test_weight_lookup(self):
        graph = make_graph("abc", [("a", "b", 5)])
        assert graph.weight("a", "b") == 5
        assert graph.weight("b", "a") == 5
        assert graph.weight("a", "c") == 0

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(ValueError, match="not a vertex"):
            make_graph("ab", [("a", "z", 1)])

    def test_neighbors(self):
        graph = make_graph("abc", [("a", "b", 1), ("a", "c", 2)])
        assert graph.neighbors("a") == {"b", "c"}
        assert graph.neighbors("b") == {"a"}

    def test_min_weight_edge(self):
        graph = make_graph(
            "abcd", [("a", "b", 5), ("c", "d", 2), ("a", "c", 9)]
        )
        assert graph.min_weight_edge() == ("c", "d", 2)

    def test_min_weight_edge_empty(self):
        with pytest.raises(ValueError):
            make_graph("ab", []).min_weight_edge()

    def test_merge_combines_weights(self):
        graph = make_graph(
            "abc", [("a", "b", 3), ("a", "c", 4), ("b", "c", 5)]
        )
        merged = graph.merge("a", "b")
        assert merged.vertex_count() == 2
        assert merged.internal_cost == 3
        assert merged.weight("a+b", "c") == 9

    def test_merge_tracks_members(self):
        graph = make_graph("abc", [("a", "b", 3)])
        merged = graph.merge("a", "b")
        assert merged.vertex("a+b").members == ("a", "b")
        assert merged.vertex("a+b").size == 128

    def test_merge_self_rejected(self):
        graph = make_graph("ab", [("a", "b", 1)])
        with pytest.raises(ValueError):
            graph.merge("a", "a")

    def test_monochromatic_cost(self):
        graph = make_graph(
            "abc", [("a", "b", 3), ("b", "c", 7)]
        )
        cost = graph.monochromatic_cost({"a": 0, "b": 0, "c": 1})
        assert cost == 3

    def test_monochromatic_cost_includes_internal(self):
        graph = make_graph("abc", [("a", "b", 3)], internal=11)
        assert graph.monochromatic_cost({"a": 0, "b": 1, "c": 0}) == 11


class TestExactColoring:
    def test_triangle_needs_three(self):
        adjacency = adjacency_of(
            [("a", "b"), ("b", "c"), ("a", "c")], "abc"
        )
        assert chromatic_number(adjacency) == 3

    def test_even_cycle_two_colors(self):
        edges = [("v0", "v1"), ("v1", "v2"), ("v2", "v3"), ("v3", "v0")]
        adjacency = adjacency_of(edges, ["v0", "v1", "v2", "v3"])
        assert chromatic_number(adjacency) == 2

    def test_odd_cycle_three_colors(self):
        names = [f"v{i}" for i in range(5)]
        edges = [(names[i], names[(i + 1) % 5]) for i in range(5)]
        adjacency = adjacency_of(edges, names)
        assert chromatic_number(adjacency) == 3

    def test_petersen_graph(self):
        """The Petersen graph has chromatic number 3 (clique number 2,
        so the clique bound alone is insufficient — exercises search)."""
        outer = [(f"o{i}", f"o{(i + 1) % 5}") for i in range(5)]
        inner = [(f"i{i}", f"i{(i + 2) % 5}") for i in range(5)]
        spokes = [(f"o{i}", f"i{i}") for i in range(5)]
        names = [f"o{i}" for i in range(5)] + [f"i{i}" for i in range(5)]
        adjacency = adjacency_of(outer + inner + spokes, names)
        assert chromatic_number(adjacency) == 3

    def test_complete_graph(self):
        names = list("abcdef")
        edges = list(itertools.combinations(names, 2))
        adjacency = adjacency_of(edges, names)
        assert chromatic_number(adjacency) == 6

    def test_empty_graph(self):
        assert chromatic_number({}) == 0
        assert exact_coloring({}) == {}

    def test_edgeless_graph(self):
        adjacency = {v: set() for v in "abc"}
        assert chromatic_number(adjacency) == 1

    def test_color_with_k_insufficient(self):
        adjacency = adjacency_of([("a", "b"), ("b", "c"), ("a", "c")], "abc")
        assert color_with_k(adjacency, 2) is None

    def test_color_with_k_zero(self):
        assert color_with_k({"a": set()}, 0) is None
        assert color_with_k({}, 0) == {}

    def test_coloring_is_proper(self):
        adjacency = adjacency_of(
            [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("a", "c")],
            "abcd",
        )
        coloring = exact_coloring(adjacency)
        for vertex, neighbors in adjacency.items():
            for neighbor in neighbors:
                assert coloring[vertex] != coloring[neighbor]

    def test_asymmetric_adjacency_rejected(self):
        with pytest.raises(ValueError, match="asymmetric"):
            chromatic_number({"a": {"b"}, "b": set()})

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            chromatic_number({"a": {"a"}})

    def test_clique_bound(self):
        adjacency = adjacency_of(
            list(itertools.combinations("abcd", 2)) + [("d", "e")],
            "abcde",
        )
        assert len(greedy_clique(adjacency)) >= 4


@st.composite
def random_graph(draw):
    n = draw(st.integers(2, 8))
    names = [f"v{i}" for i in range(n)]
    edges = []
    for a, b in itertools.combinations(names, 2):
        if draw(st.booleans()):
            edges.append((a, b))
    return names, edges


@given(graph=random_graph())
@settings(max_examples=40, deadline=None)
def test_exact_coloring_is_minimum(graph):
    """Property: the DSATUR B&B finds the true chromatic number
    (verified against brute force on small graphs)."""
    names, edges = graph
    adjacency = adjacency_of(edges, names)
    found = chromatic_number(adjacency)

    def brute_force() -> int:
        for k in range(1, len(names) + 1):
            for assignment in itertools.product(range(k), repeat=len(names)):
                coloring = dict(zip(names, assignment))
                if all(
                    coloring[a] != coloring[b] for a, b in edges
                ):
                    return k
        return len(names)

    assert found == brute_force()


@given(graph=random_graph())
@settings(max_examples=30, deadline=None)
def test_greedy_upper_bounds_exact(graph):
    names, edges = graph
    adjacency = adjacency_of(edges, names)
    greedy = greedy_coloring(adjacency)
    greedy_colors = max(greedy.values()) + 1 if greedy else 0
    assert chromatic_number(adjacency) <= greedy_colors


class TestMerging:
    def test_no_merging_when_k_colorable(self):
        graph = make_graph("abc", [("a", "b", 1)])
        result = color_with_merging(graph, k=2)
        assert result.merges == []
        assert result.cost == 0
        assert result.assignment["a"] != result.assignment["b"]

    def test_merging_triangle_into_two_columns(self):
        graph = make_graph(
            "abc", [("a", "b", 1), ("b", "c", 5), ("a", "c", 9)]
        )
        result = color_with_merging(graph, k=2)
        # The min-weight edge (a, b) is merged: they share a column.
        assert result.merges == [("a", "b", 1)]
        assert result.cost == 1
        assert result.assignment["a"] == result.assignment["b"]
        assert result.assignment["c"] != result.assignment["a"]

    def test_merging_reaches_single_column(self):
        graph = make_graph(
            "abc", [("a", "b", 1), ("b", "c", 5), ("a", "c", 9)]
        )
        result = color_with_merging(graph, k=1)
        assert result.cost == 15
        assert len(set(result.assignment.values())) == 1

    def test_cost_never_below_optimal(self):
        graph = make_graph(
            "abcd",
            [("a", "b", 4), ("b", "c", 1), ("c", "d", 3), ("a", "d", 2),
             ("a", "c", 8)],
        )
        for k in (1, 2, 3):
            result = color_with_merging(graph, k=k)
            assert result.cost >= optimal_cost_reference(graph, k)
            assert result.colors_used <= k

    def test_greedy_strategy(self):
        graph = make_graph("abc", [("a", "b", 2), ("b", "c", 2)])
        result = color_with_merging(graph, k=2, strategy="greedy")
        assert result.colors_used <= 2

    def test_random_strategy_deterministic(self):
        graph = make_graph("abcd", [("a", "b", 2)])
        first = color_with_merging(graph, k=2, strategy="random", seed=5)
        second = color_with_merging(graph, k=2, strategy="random", seed=5)
        assert first.assignment == second.assignment

    def test_unknown_strategy(self):
        graph = make_graph("ab", [])
        with pytest.raises(ValueError):
            color_with_merging(graph, k=1, strategy="firstfit")

    def test_k_zero_rejected(self):
        graph = make_graph("ab", [])
        with pytest.raises(ValueError):
            color_with_merging(graph, k=0)

    @given(
        weights=st.lists(st.integers(1, 100), min_size=3, max_size=3),
        k=st.integers(1, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_triangle_cost_formula(self, weights, k):
        """On a triangle the heuristic is optimal for every k."""
        wab, wbc, wac = weights
        graph = make_graph(
            "abc",
            [("a", "b", wab), ("b", "c", wbc), ("a", "c", wac)],
        )
        result = color_with_merging(graph, k=k)
        assert result.cost == optimal_cost_reference(graph, k)

"""Sweep engine tests: specs, hashing, scheduling, result caching."""

import json

import pytest

from repro.sim.engine.cache import MISS, ResultCache
from repro.sim.engine.scheduler import SweepEngine
from repro.sim.engine.spec import (
    SimJob,
    SweepSpec,
    canonical_json,
    resolve_runner,
    runner_path,
)

TRACE_SIM = "repro.experiments.runners:trace_sim"


class TestSpec:
    def test_sweep_enumerates_cartesian_product(self):
        spec = SweepSpec(
            name="demo",
            runner=TRACE_SIM,
            base={"kind": "zipf", "count": 100},
            axes={"columns": [2, 4], "total_bytes": [1024, 2048]},
        )
        jobs = spec.jobs()
        assert len(jobs) == len(spec) == 4
        assert [job.params["columns"] for job in jobs] == [2, 2, 4, 4]
        assert [job.params["total_bytes"] for job in jobs] == [
            1024, 2048, 1024, 2048,
        ]
        assert all(job.params["kind"] == "zipf" for job in jobs)
        assert jobs[0].label == "demo[columns=2,total_bytes=1024]"

    def test_axes_cannot_shadow_base(self):
        with pytest.raises(ValueError, match="also appear in base"):
            SweepSpec(
                name="bad",
                runner=TRACE_SIM,
                base={"count": 1},
                axes={"count": [1, 2]},
            )

    def test_content_hash_stable_and_sensitive(self):
        job = SimJob(runner=TRACE_SIM, params={"count": 10, "kind": "zipf"})
        same = SimJob(runner=TRACE_SIM, params={"kind": "zipf", "count": 10})
        different = SimJob(
            runner=TRACE_SIM, params={"kind": "zipf", "count": 11}
        )
        assert job.content_hash() == same.content_hash()
        assert job.content_hash() != different.content_hash()

    def test_hash_ignores_label_and_tuple_list_spelling(self):
        first = SimJob(
            runner=TRACE_SIM, params={"quanta": (1, 2)}, label="a"
        )
        second = SimJob(
            runner=TRACE_SIM, params={"quanta": [1, 2]}, label="b"
        )
        assert first.content_hash() == second.content_hash()

    def test_non_serializable_params_rejected(self):
        job = SimJob(runner=TRACE_SIM, params={"bad": object()})
        with pytest.raises(TypeError, match="not"):
            job.content_hash()

    def test_runner_path_and_resolution(self):
        assert runner_path(TRACE_SIM) == TRACE_SIM
        resolved = resolve_runner(TRACE_SIM)
        assert callable(resolved)
        assert runner_path(resolved) == TRACE_SIM
        with pytest.raises(ValueError, match="module"):
            runner_path("no-colon-here")

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": (2, 3)}) == (
            '{"a":[2,3],"b":1}'
        )


class TestEngineExecution:
    def test_serial_runs_jobs_in_order(self):
        calls = []

        def runner(value):
            calls.append(value)
            return value * 2

        engine = SweepEngine(workers=1, backend="serial")
        jobs = [
            SimJob(runner=runner, params={"value": index})
            for index in range(4)
        ]
        outcomes = engine.run(jobs)
        assert [outcome.value for outcome in outcomes] == [0, 2, 4, 6]
        assert calls == [0, 1, 2, 3]
        assert all(not outcome.cached for outcome in outcomes)

    def test_thread_backend_matches_serial(self):
        spec = SweepSpec(
            name="zipf",
            runner=TRACE_SIM,
            base={"kind": "zipf", "count": 400},
            axes={"columns": [1, 2, 4]},
        )
        serial = SweepEngine(workers=1, backend="serial").values(spec)
        threaded = SweepEngine(workers=3, backend="thread").values(spec)
        assert serial == threaded

    def test_process_backend_matches_serial(self):
        spec = SweepSpec(
            name="zipf",
            runner=TRACE_SIM,
            base={"kind": "zipf", "count": 400},
            axes={"columns": [2, 4]},
        )
        serial = SweepEngine(workers=1, backend="serial").values(spec)
        pooled = SweepEngine(workers=2, backend="process").values(spec)
        assert serial == pooled

    def test_batched_and_scalar_runners_agree(self):
        base = {"kind": "looped", "count": 3000, "span": 4096}
        fast = SweepEngine(workers=1, backend="serial").values(
            [SimJob(runner=TRACE_SIM, params={**base, "batched": True})]
        )[0]
        scalar = SweepEngine(workers=1, backend="serial").values(
            [SimJob(runner=TRACE_SIM, params={**base, "batched": False})]
        )[0]
        assert fast == scalar

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SweepEngine(backend="gpu")


class TestResultCaching:
    def test_second_run_served_from_memory_cache(self):
        executions = []

        def runner(value):
            executions.append(value)
            return value + 1

        engine = SweepEngine(workers=1, backend="serial")
        jobs = [SimJob(runner=runner, params={"value": 7})]
        first = engine.run(jobs)
        second = engine.run(jobs)
        assert executions == [7]  # ran exactly once
        assert not first[0].cached and second[0].cached
        assert first[0].value == second[0].value == 8
        assert engine.stats["executed"] == 1
        assert engine.stats["from_cache"] == 1

    def test_memory_tier_lru_bound(self):
        from repro.sim.engine.cache import MISS, ResultCache

        cache = ResultCache(max_memory_entries=2)
        job = SimJob(runner=TRACE_SIM, params={})
        cache.put("a", job, 1)
        cache.put("b", job, 2)
        assert cache.get("a") == 1  # touch: "b" is now least recent
        cache.put("c", job, 3)
        assert len(cache) == 2
        assert cache.get("b") is MISS  # evicted
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_memory_bound_rejects_nonpositive(self):
        from repro.sim.engine.cache import ResultCache

        import pytest

        with pytest.raises(ValueError, match="max_memory_entries"):
            ResultCache(max_memory_entries=0)

    def test_disk_cache_survives_engine_restart(self, tmp_path):
        spec = SweepSpec(
            name="zipf",
            runner=TRACE_SIM,
            base={"kind": "zipf", "count": 300},
            axes={"columns": [2, 4]},
        )
        first_engine = SweepEngine(
            workers=1, backend="serial", cache_dir=tmp_path
        )
        first = first_engine.values(spec)
        assert first_engine.stats["executed"] == 2

        second_engine = SweepEngine(
            workers=1, backend="serial", cache_dir=tmp_path
        )
        outcomes = second_engine.run(spec)
        assert [outcome.value for outcome in outcomes] == first
        assert all(outcome.cached for outcome in outcomes)
        assert second_engine.stats["executed"] == 0

    def test_extending_an_axis_only_runs_new_points(self, tmp_path):
        engine = SweepEngine(workers=1, backend="serial", cache_dir=tmp_path)
        narrow = SweepSpec(
            name="zipf",
            runner=TRACE_SIM,
            base={"kind": "zipf", "count": 300},
            axes={"columns": [2]},
        )
        wide = SweepSpec(
            name="zipf",
            runner=TRACE_SIM,
            base={"kind": "zipf", "count": 300},
            axes={"columns": [2, 4]},
        )
        engine.run(narrow)
        outcomes = engine.run(wide)
        assert [outcome.cached for outcome in outcomes] == [True, False]

    def test_cache_files_are_self_describing(self, tmp_path):
        engine = SweepEngine(workers=1, backend="serial", cache_dir=tmp_path)
        job = SimJob(
            runner=TRACE_SIM,
            params={"kind": "zipf", "count": 200},
            label="demo-job",
        )
        engine.run([job])
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["runner"] == TRACE_SIM
        assert payload["params"]["count"] == 200
        assert payload["value"]["accesses"] == 200

    def test_corrupt_cache_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = SimJob(runner=TRACE_SIM, params={"count": 1})
        digest = job.content_hash()
        (tmp_path / f"{digest}.json").write_text("{not json")
        assert cache.get(digest) is MISS

    def test_valid_json_without_value_key_is_miss(self, tmp_path):
        """Regression: a parseable file with the wrong shape used to
        count as a hit returning None, and pinned that None in the
        memory tier."""
        cache = ResultCache(tmp_path)
        job = SimJob(runner=TRACE_SIM, params={"count": 2})
        digest = job.content_hash()
        path = tmp_path / f"{digest}.json"
        path.write_text('{"runner": "x", "params": {}}')
        assert cache.get(digest) is MISS
        # Not pinned: a repeat lookup is still a miss, not a None hit.
        assert cache.get(digest) is MISS
        assert cache.hits == 0 and cache.misses == 2
        # The bad file is quarantined so the slot can be recomputed.
        assert not path.exists()
        assert path.with_suffix(".json.corrupt").exists()
        value = cache.put(digest, job, {"accesses": 2})
        assert cache.get(digest) == value

    def test_wrong_shape_payloads_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        for payload in ('["list"]', '"text"', "{bad json"):
            job = SimJob(runner=TRACE_SIM, params={"p": payload})
            digest = job.content_hash()
            path = tmp_path / f"{digest}.json"
            path.write_text(payload)
            assert cache.get(digest) is MISS
            assert not path.exists()
            assert path.with_suffix(".json.corrupt").exists()

    def test_stale_temp_files_swept_on_open(self, tmp_path):
        """Regression: a writer killed between mkstemp and os.replace
        leaked ``*.tmp`` files into the cache directory forever."""
        first = ResultCache(tmp_path)
        job = SimJob(runner=TRACE_SIM, params={"count": 3})
        digest = job.content_hash()
        first.put(digest, job, {"accesses": 3})
        (tmp_path / "deadbeef.tmp").write_text("partial write")
        (tmp_path / "cafe.tmp").write_text("")
        reopened = ResultCache(tmp_path)
        assert list(tmp_path.glob("*.tmp")) == []
        # Real cache contents survive the sweep.
        assert reopened.get(digest) == {"accesses": 3}

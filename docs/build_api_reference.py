#!/usr/bin/env python3
"""Build (and verify) the API reference under ``docs/api/``.

Zero-dependency generator: it imports the documented packages, walks
their public surface with :mod:`inspect`, and renders one markdown
page per module.  Because it *imports* everything and *resolves*
every absolute ``:class:`/:func:`/:mod:`/:meth:`/:attr:``
cross-reference found in docstrings, a broken reference or a deleted
symbol fails the build — that is the docs CI gate.  (CI additionally
builds a browsable HTML site with ``pdoc``; this script is the part
that needs no third-party installs and therefore also runs in the
tier-1 environment.)

Usage::

    python docs/build_api_reference.py           # regenerate docs/api/
    python docs/build_api_reference.py --check   # CI: verify freshness,
                                                 # docstrings, cross-refs

``--check`` fails when:

* a documented module/class/function lost its docstring (for the
  strict packages this mirrors ruff's D1xx gate in pyproject.toml);
* a ``repro.*`` cross-reference in any docstring does not resolve;
* ``docs/api/`` is stale relative to the source (regenerate and
  commit).
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
API_DIR = ROOT / "docs" / "api"

#: Packages rendered into the reference.
DOCUMENTED_PACKAGES = [
    "repro.cache",
    "repro.profiling",
    "repro.layout",
    "repro.sim.engine",
    "repro.runtime",
    "repro.fleet",
    "repro.inspect",
    "repro.trace",
    "repro.analysis",
]

#: Packages whose *public surface* must be fully docstringed
#: (the ruff D1xx gate covers the same set; see pyproject.toml).
STRICT_PACKAGES = (
    "repro.sim.engine",
    "repro.runtime",
    "repro.fleet",
    "repro.inspect",
    "repro.analysis",
)

#: Sphinx-style roles validated against the live import graph.
ROLE_PATTERN = re.compile(
    r":(?:class|func|mod|meth|attr|data|exc):`~?([A-Za-z0-9_.]+)`"
)


def iter_modules(package_name: str):
    """Yield (name, module) for a package and its submodules."""
    package = importlib.import_module(package_name)
    yield package_name, package
    if hasattr(package, "__path__"):
        for info in sorted(
            pkgutil.iter_modules(package.__path__),
            key=lambda item: item.name,
        ):
            if info.name == "__main__":
                continue  # executable entry points run on import
            yield from iter_modules(f"{package_name}.{info.name}")


def public_members(module):
    """(classes, functions) defined by this module, name-sorted."""
    classes, functions = [], []
    for name, member in sorted(vars(module).items()):
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented where it is defined
        if inspect.isclass(member):
            classes.append((name, member))
        elif inspect.isfunction(member):
            functions.append((name, member))
    return classes, functions


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _docstring_block(obj, problems, owner, strict) -> str:
    doc = inspect.getdoc(obj)
    if not doc:
        if strict:
            problems.append(f"missing docstring: {owner}")
        return "*Undocumented.*\n"
    return doc + "\n"


def render_class(name, cls, module_name, problems, strict) -> str:
    lines = [f"### class `{name}{signature_of(cls)}`", ""]
    lines.append(
        _docstring_block(
            cls, problems, f"{module_name}.{name}", strict
        )
    )
    for attr_name, attr in sorted(vars(cls).items()):
        if attr_name.startswith("_"):
            continue
        if inspect.isfunction(attr):
            lines.append(
                f"#### `{name}.{attr_name}{signature_of(attr)}`"
            )
            lines.append("")
            lines.append(
                _docstring_block(
                    attr,
                    problems,
                    f"{module_name}.{name}.{attr_name}",
                    strict,
                )
            )
        elif isinstance(attr, property):
            lines.append(f"#### property `{name}.{attr_name}`")
            lines.append("")
            lines.append(
                _docstring_block(
                    attr,
                    problems,
                    f"{module_name}.{name}.{attr_name}",
                    strict,
                )
            )
        elif isinstance(attr, classmethod):
            function = attr.__func__
            lines.append(
                f"#### classmethod "
                f"`{name}.{attr_name}{signature_of(function)}`"
            )
            lines.append("")
            lines.append(
                _docstring_block(
                    function,
                    problems,
                    f"{module_name}.{name}.{attr_name}",
                    strict,
                )
            )
        elif isinstance(attr, staticmethod):
            function = attr.__func__
            lines.append(
                f"#### staticmethod "
                f"`{name}.{attr_name}{signature_of(function)}`"
            )
            lines.append("")
            lines.append(
                _docstring_block(
                    function,
                    problems,
                    f"{module_name}.{name}.{attr_name}",
                    strict,
                )
            )
    return "\n".join(lines)


def render_module(module_name, module, problems, strict) -> str:
    lines = [f"# `{module_name}`", ""]
    lines.append(
        _docstring_block(module, problems, module_name, strict)
    )
    classes, functions = public_members(module)
    for name, function in functions:
        lines.append(f"### `{name}{signature_of(function)}`")
        lines.append("")
        lines.append(
            _docstring_block(
                function, problems, f"{module_name}.{name}", strict
            )
        )
    for name, cls in classes:
        lines.append(render_class(name, cls, module_name, problems, strict))
    lines.append("")
    return "\n".join(lines)


def collect_references(module) -> list[str]:
    """All absolute ``repro.*`` role targets in the module's source."""
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError):
        return []
    return [
        target
        for target in ROLE_PATTERN.findall(source)
        if target.startswith("repro.")
    ]


def resolve_reference(target: str) -> bool:
    """True when a dotted ``repro.x.y.Z`` target imports/resolves."""
    parts = target.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attribute in parts[split:]:
                obj = getattr(obj, attribute)
        except AttributeError:
            return False
        return True
    return False


def build() -> tuple[dict[str, str], list[str]]:
    """Render every documented module; returns (pages, problems)."""
    pages: dict[str, str] = {}
    problems: list[str] = []
    index_lines = [
        "# API reference",
        "",
        "Generated by `docs/build_api_reference.py` — regenerate with",
        "`python docs/build_api_reference.py` after changing public",
        "APIs (CI fails when this directory is stale).",
        "",
    ]
    for package_name in DOCUMENTED_PACKAGES:
        index_lines.append(f"## `{package_name}`")
        index_lines.append("")
        for module_name, module in iter_modules(package_name):
            strict = module_name.startswith(STRICT_PACKAGES)
            pages[f"{module_name}.md"] = render_module(
                module_name, module, problems, strict
            )
            summary = (inspect.getdoc(module) or "").partition("\n")[0]
            index_lines.append(
                f"- [`{module_name}`]({module_name}.md) — {summary}"
            )
            for target in collect_references(module):
                if not resolve_reference(target):
                    problems.append(
                        f"broken cross-reference in {module_name}: "
                        f"{target!r}"
                    )
        index_lines.append("")
    pages["index.md"] = "\n".join(index_lines) + "\n"
    return pages, problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify docs/api/ is fresh and every reference resolves "
        "(write nothing)",
    )
    arguments = parser.parse_args(argv)
    sys.path.insert(0, str(ROOT / "src"))

    pages, problems = build()
    for problem in problems:
        print(f"ERROR: {problem}", file=sys.stderr)

    if arguments.check:
        stale = []
        existing = {
            path.name
            for path in API_DIR.glob("*.md")
        } if API_DIR.is_dir() else set()
        for name, content in pages.items():
            on_disk = API_DIR / name
            if not on_disk.is_file():
                stale.append(f"missing page: docs/api/{name}")
            elif on_disk.read_text(encoding="utf-8") != content:
                stale.append(f"stale page: docs/api/{name}")
        for orphan in sorted(existing - set(pages)):
            stale.append(f"orphaned page: docs/api/{orphan}")
        for item in stale:
            print(
                f"ERROR: {item} (run `python "
                "docs/build_api_reference.py` and commit)",
                file=sys.stderr,
            )
        if problems or stale:
            return 1
        print(
            f"api reference OK: {len(pages)} pages fresh, all "
            "cross-references resolve"
        )
        return 0

    if problems:
        return 1
    API_DIR.mkdir(parents=True, exist_ok=True)
    for orphan in API_DIR.glob("*.md"):
        if orphan.name not in pages:
            orphan.unlink()
    for name, content in pages.items():
        (API_DIR / name).write_text(content, encoding="utf-8")
    print(f"wrote {len(pages)} pages to {API_DIR}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""The compiler-side flow: static IF analysis instead of profiling.

The paper's Section 3.1.1 offers two weight sources.  This example
writes the intermediate-form twin of a FIR filter by hand (what a
compiler front end would emit), derives approximate access counts and
lifetimes from loop trip counts, plans a layout from them — no trace
needed — and then validates the plan against a measured run.

Run:  python examples/compiler_flow.py
"""

from repro.layout.algorithm import DataLayoutPlanner, LayoutConfig
from repro.profiling.ir import SeqNode, access, compute, loop
from repro.profiling.static_analysis import analyze_program
from repro.sim.config import EMBEDDED_TIMING
from repro.sim.executor import TraceExecutor
from repro.utils.tables import format_table
from repro.workloads.kernels import FIRFilter


def main() -> None:
    kernel = FIRFilter(signal_length=512, tap_count=32)

    # The IF a front end would produce for FIRFilter.run():
    #   for n in 512: { for k in 32: { taps[k]; signal[n-k]; mac } ;
    #                   output[n] = acc }
    program = loop(
        kernel.signal_length,
        SeqNode.of(
            loop(
                kernel.tap_count,
                access("taps"),
                access("signal"),
                compute(1),
            ),
            access("output", write_fraction=1.0),
        ),
    )

    symbols = kernel.memory_map.symbols
    static_profile = analyze_program(program, symbols)
    print("static estimates (from loop trip counts):")
    rows = [
        [name, stats.access_count, f"{stats.lifetime.start}.."
         f"{stats.lifetime.stop}"]
        for name, stats in sorted(static_profile.variables.items())
    ]
    print(format_table(["variable", "est. accesses", "est. lifetime"],
                       rows))

    config = LayoutConfig(columns=4, column_bytes=512,
                          split_oversized=False)
    planner = DataLayoutPlanner(config)
    assignment = planner.plan_from_profile(static_profile, symbols)
    print()
    print(assignment.describe())

    # Validate against the measured trace.
    run = kernel.record()
    result = TraceExecutor(EMBEDDED_TIMING).run(run.trace, assignment)
    print()
    print(
        f"measured under the static plan: {result.cycles} cycles, "
        f"{result.misses} misses, CPI {result.cpi:.3f}"
    )


if __name__ == "__main__":
    main()

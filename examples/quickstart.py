#!/usr/bin/env python3
"""Quickstart: the column cache mechanism in five minutes.

Walks the paper's core ideas end to end on a tiny cache:

1. build a column cache (a set-associative cache whose replacement can
   be restricted per access);
2. partition it with tints (page -> tint -> column bit vector);
3. emulate scratchpad memory in one column;
4. show graceful repartitioning (resident data survives a remap).

Run:  python examples/quickstart.py
"""

from repro.cache import CacheGeometry, ColumnCache
from repro.cache.scratchpad import ColumnScratchpad
from repro.mem import PageTable, TintTable
from repro.mem.address import AddressRange
from repro.utils.bitvector import ColumnMask


def main() -> None:
    # A 2 KB cache: 4 columns x 32 sets x 16-byte lines (the paper's
    # Figure 4 configuration).
    geometry = CacheGeometry(line_size=16, sets=32, columns=4)
    cache = ColumnCache(geometry, policy="lru")
    print(f"cache: {geometry}")

    # ------------------------------------------------------------------
    # 1. Partitioning with tints (paper Section 2.2, Figure 3).
    # ------------------------------------------------------------------
    tints = TintTable(columns=4)
    pages = PageTable(page_size=64)

    # Give the "stream" region its own tint confined to column 0, and
    # remove column 0 from the default tint so nothing else intrudes.
    tints.define("stream", ColumnMask.of(0, width=4))
    tints.remap("red", ColumnMask.of(1, 2, 3, width=4))
    stream_region = AddressRange(0x8000, 4096)
    for vpn in stream_region.pages(pages.page_size):
        pages.set_tint(vpn, "stream")
    print("tints:", {t: tints.mask_of(t).to_string() for t in tints})

    # A big stream walks through... confined to column 0.
    for address in stream_region.lines(16):
        mask = tints.mask_of(pages.entry_for_address(address).tint)
        cache.access(address, mask=mask)

    # Meanwhile hot data lives in the other columns, untouched.
    hot = AddressRange(0x1000, 512)
    for address in hot.lines(16):
        mask = tints.mask_of(pages.entry_for_address(address).tint)
        cache.access(address, mask=mask)
    hits = sum(
        cache.access(
            address,
            mask=tints.mask_of(pages.entry_for_address(address).tint),
        ).hit
        for address in hot.lines(16)
    )
    print(f"hot data after the stream: {hits}/32 lines still hit")
    print(f"per-column occupancy: {cache.occupancy()}")

    # ------------------------------------------------------------------
    # 2. Scratchpad emulation (paper Section 2.3).
    # ------------------------------------------------------------------
    pad_cache = ColumnCache(geometry)
    pad = ColumnScratchpad(
        pad_cache, AddressRange(0x4000, 512), ColumnMask.of(3, width=4)
    )
    pad.preload()
    for block in range(2000):  # heavy traffic elsewhere
        pad_cache.access(0x20000 + block * 16,
                         mask=ColumnMask.of(0, 1, 2, width=4))
    print(
        "scratchpad emulation: region pinned after 2000 competing "
        f"accesses -> {pad.is_pinned()}"
    )

    # ------------------------------------------------------------------
    # 3. Graceful repartitioning (paper Section 2.1).
    # ------------------------------------------------------------------
    cache2 = ColumnCache(geometry)
    old = ColumnMask.of(0, width=4)
    new = ColumnMask.of(3, width=4)
    cache2.access(0x1000, mask=old)
    line = cache2.find_line(0x1000)
    print(f"line cached in column {line.column} under the old mapping")
    hit = cache2.access(0x1000, mask=new)  # remapped: still hits!
    print(f"after remapping to column 3: hit={hit.hit} (no copy needed)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Dynamic (per-procedure) remapping on a shared-data decoder loop.

The MPEG app's stages share arrays (dequant writes the coefficients
idct reads; idct writes the pixels plus reads), and the access pattern
of each shared array changes per stage — the paper's Section 3.2
scenario.  This example plans one layout per phase, shows which
transitions the planner deems worth a remap, and compares the phased
execution against the best single static layout.

Run:  python examples/dynamic_remapping.py
"""

from repro.layout.algorithm import DataLayoutPlanner, LayoutConfig
from repro.layout.dynamic import DynamicLayoutPlanner
from repro.sim.config import EMBEDDED_TIMING
from repro.sim.executor import TraceExecutor
from repro.utils.tables import format_table
from repro.workloads.mpeg import MPEGDecodeApp


def main() -> None:
    run = MPEGDecodeApp(blocks=8, frames=2).record()
    executor = TraceExecutor(EMBEDDED_TIMING)

    print("per-phase planning decisions (2 columns):")
    config2 = LayoutConfig(columns=2, column_bytes=512,
                           split_oversized=False)
    plan2 = DynamicLayoutPlanner(config2).plan(run)
    rows = []
    for phase in plan2.phases:
        rows.append(
            [
                phase.label,
                "remap" if phase.remapped else "keep",
                "-" if phase.reuse_cost is None else phase.reuse_cost,
                phase.fresh_cost,
            ]
        )
    print(format_table(["phase", "decision", "reuse W", "fresh W"], rows))
    print()

    rows = []
    for columns in (2, 3, 4):
        config = LayoutConfig(
            columns=columns, column_bytes=512, split_oversized=False
        )
        static_result = executor.run(
            run.trace, DataLayoutPlanner(config).plan(run)
        )
        phased = executor.run_phased(
            run, DynamicLayoutPlanner(config).plan(run)
        )
        total = phased.total
        gain = (static_result.cycles - total.cycles) / static_result.cycles
        rows.append(
            [
                columns,
                static_result.cycles,
                total.cycles,
                phased.remap_count,
                f"{gain:+.1%}",
            ]
        )
    print(
        format_table(
            ["columns", "static cycles", "dynamic cycles", "remaps",
             "gain"],
            rows,
            title="static (one layout) vs dynamic (per-phase remapping)",
        )
    )
    print()
    print("Dynamic layout wins when columns are scarce: each phase gets")
    print("the whole cache arranged for *its* conflicts.  With plenty of")
    print("columns a single static layout already separates everything,")
    print("so remapping only adds its (tiny) overhead.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Multitasking predictability: the paper's Figure 5 story, small scale.

Three gzip jobs share one processor.  Without column mapping, job A's
CPI swings with the scheduler's time quantum (its cache contents are
destroyed by jobs B and C at every switch).  Mapped to its own columns,
job A's CPI is lower *and* nearly flat — predictable performance under
interrupts and varying quanta, which is what real-time systems need.

Run:  python examples/multitasking_predictability.py
"""

from repro.cache.geometry import CacheGeometry
from repro.sim.config import MULTITASK_TIMING
from repro.sim.multitask import Job, MultitaskSimulator
from repro.utils.bitvector import ColumnMask
from repro.utils.tables import format_series
from repro.workloads.gzip_like import make_gzip_job


def cpi_curve(runs, geometry, quanta, mapped):
    cpis = []
    for quantum in quanta:
        jobs = []
        for index, name in enumerate("ABC"):
            mask = None
            if mapped:
                mask = (
                    ColumnMask.contiguous(0, 6, 8)
                    if name == "A"
                    else ColumnMask.contiguous(6, 2, 8)
                )
            jobs.append(
                Job(
                    name=name,
                    trace=runs[name].trace,
                    mask=mask,
                    address_offset=index << 32,
                )
            )
        simulator = MultitaskSimulator(geometry, jobs, MULTITASK_TIMING)
        simulator.warm_up(1)
        results = simulator.run(quantum, 150_000)
        cpis.append(round(results["A"].cpi(MULTITASK_TIMING), 3))
    return cpis


def main() -> None:
    print("recording three gzip jobs (2 KB input each)...")
    runs = {
        name: make_gzip_job(name, input_bytes=2048, window_bits=12,
                            hash_bits=11).record()
        for name in "ABC"
    }
    geometry = CacheGeometry(line_size=16, sets=128, columns=8)  # 16 KB
    quanta = [4 ** k for k in range(0, 9, 2)]
    shared = cpi_curve(runs, geometry, quanta, mapped=False)
    mapped = cpi_curve(runs, geometry, quanta, mapped=True)
    print()
    print(
        format_series(
            "quantum",
            quanta,
            {"shared CPI": shared, "mapped CPI": mapped},
            title="job A, 16 KB cache, 3-job round robin",
        )
    )
    spread = max(shared) - min(shared)
    spread_mapped = max(mapped) - min(mapped)
    print()
    print(f"CPI spread across quanta: shared={spread:.3f}, "
          f"mapped={spread_mapped:.3f}")
    print("column mapping makes job A's performance predictable.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fleet-as-a-service: the live sharded broker daemon, end to end.

Where ``fleet_serving.py`` replays a *recorded* fleet trace through
one offline executor, this example runs the real service: four broker
shards behind a rendezvous-hash router, an asyncio admission queue
per shard, and a hotspot monitor that live-migrates tenants off the
hot shard.  A Poisson load generator drives ~120 short-lived tenants
at it, deliberately skewed so one shard gets a quarter of all
arrivals; the monitor is what keeps that shard's admission queue from
melting.

Run:  python examples/fleet_service.py
"""

import asyncio
import dataclasses

from repro.fleet.service import (
    FleetService,
    LoadGenConfig,
    ServiceConfig,
    build_arrivals,
    run_load,
)
from repro.utils.tables import format_table


def main() -> None:
    config = ServiceConfig(
        patience_instructions=32_768,
        monitor_interval_instructions=4_096,
    )
    load = LoadGenConfig(
        tenants=120,
        mean_interarrival_instructions=2_048.0,
        mean_service_instructions=6_144.0,
        min_service_instructions=2_048,
        hot_fraction=0.25,
        hot_shard=1,
        seed=7,
    )

    async def serve():
        async with FleetService(config) as service:
            arrivals = build_arrivals(load, service.router)
            report = await run_load(service, arrivals)
            return service, report

    service, report = asyncio.run(serve())
    snapshot = service.snapshot()

    print(f"served {load.tenants} Poisson tenants across "
          f"{config.shards} shards "
          f"({load.hot_fraction:.0%} aimed at shard {load.hot_shard})")
    print()

    rows = []
    for shard in snapshot.shards:
        rows.append([
            f"shard {shard.shard}",
            shard.admitted,
            shard.rejected,
            f"{shard.migrations_in}/{shard.migrations_out}",
            f"{report.p99_queue_wait(shard.shard):.0f}",
            f"{shard.cpi:.2f}",
        ])
    print(format_table(
        ["", "admitted", "rejected", "migr in/out",
         "p99 wait (instr)", "cpi"],
        rows,
    ))
    print()

    print(f"admissions/sec (wall)     : "
          f"{report.admissions_per_second:.0f}")
    print(f"admitted / rejected       : {report.admitted} / "
          f"{report.rejected}")
    print(f"live migrations           : {len(service.migrations)}")
    print(f"disjoint-column audits    : {service.invariant_checks} "
          f"({service.invariant_violations} violations)")
    ok = (
        service.invariant_violations == 0
        and len(service.migrations) > 0
    )
    print(f"migration kept columns disjoint under churn -> {ok}")


if __name__ == "__main__":
    main()

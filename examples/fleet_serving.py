#!/usr/bin/env python3
"""Fleet serving: a column broker isolating a dynamic tenant mix.

Four tenants share one 16 KB column cache: a gzip compressor (large
hot working set), a streaming scan (touches everything, reuses
nothing), and two small hot-table kernels (CRC32, histogram).  They
arrive at different times; one departs early.  The broker profiles
each arrival, plans its column demand with the layout algorithm,
grants disjoint columns weighted by priority and benefit, and
rewrites tints live on every arrival and departure — the streaming
polluter ends up fenced into a single column, where it can hurt
nobody.

The same mix is then served by an unpartitioned shared cache: watch
the polluter wreck the other tenants' CPI.

Run:  python examples/fleet_serving.py
"""

from repro.cache.geometry import CacheGeometry
from repro.fleet import (
    ColumnBroker,
    FleetConfig,
    FleetEvent,
    FleetExecutor,
    FleetTrace,
    SharedPool,
    TenantSpec,
)
from repro.sim.config import MULTITASK_TIMING
from repro.utils.tables import format_table
from repro.workloads.suite import make_workload

GEOMETRY = CacheGeometry(line_size=16, sets=64, columns=16)
TIMING = MULTITASK_TIMING
HORIZON = 300_000


def build_fleet() -> FleetTrace:
    recipes = [
        # (workload, kwargs, priority, arrival time)
        ("gzip", dict(input_bytes=2048, window_bits=11, hash_bits=10), 2, 0),
        ("scan", dict(buffer_bytes=32768, stride_bytes=16, passes=2), 1, 0),
        ("crc32", dict(message_bytes=512), 1, 40_000),
        ("histogram", dict(sample_count=512, bin_count=64), 1, 80_000),
    ]
    events = []
    for index, (name, kwargs, priority, arrival) in enumerate(recipes):
        run = make_workload(name, seed=index, **kwargs).record()
        spec = TenantSpec(
            name=f"{name}",
            run=run,
            priority=priority,
            address_offset=index << 32,
        )
        events.append(FleetEvent(time=arrival, kind="arrival", spec=spec))
    events.append(FleetEvent(time=220_000, kind="departure", tenant="gzip"))
    events.sort(key=lambda event: event.time)
    return FleetTrace(events=tuple(events), horizon_instructions=HORIZON)


def serve(fleet: FleetTrace, broker) -> dict:
    executor = FleetExecutor(
        GEOMETRY,
        TIMING,
        FleetConfig(quantum_instructions=1024, window_instructions=16_384),
    )
    return executor.run(fleet, broker=broker)


def main() -> None:
    fleet = build_fleet()
    print(
        f"{len(fleet.specs())} tenants over {HORIZON} instructions, "
        f"{GEOMETRY.columns} columns x "
        f"{GEOMETRY.sets * GEOMETRY.line_size} B\n"
    )

    brokered = serve(fleet, ColumnBroker(GEOMETRY, TIMING))
    shared = serve(fleet, SharedPool(GEOMETRY, TIMING))

    rows = []
    for name in sorted(brokered.telemetry):
        telemetry = brokered.telemetry[name]
        occupancy = telemetry.occupancy_history()
        rows.append(
            [
                name,
                telemetry.status.value,
                telemetry.priority,
                f"{telemetry.mean_occupancy():.1f}",
                f"{occupancy[-1] if occupancy else 0}",
                f"{telemetry.cpi(TIMING):.3f}",
                f"{shared.telemetry[name].cpi(TIMING):.3f}",
                telemetry.remaps,
            ]
        )
    print(
        format_table(
            [
                "tenant",
                "status",
                "prio",
                "cols(avg)",
                "cols(end)",
                "broker CPI",
                "shared CPI",
                "remaps",
            ],
            rows,
            title="fleet serving: broker vs shared cache",
        )
    )
    print(
        f"\ntint rewrites under the broker: {len(brokered.rewrites)} "
        "(arrivals, departures, phase changes)"
    )
    scan_columns = brokered.telemetry["scan"].mean_occupancy()
    print(
        f"the streaming polluter averaged {scan_columns:.1f} column(s) "
        "-- fenced in, its misses are its own problem"
    )
    hot = [name for name in brokered.telemetry if name != "scan"]
    protected = all(
        brokered.telemetry[name].cpi(TIMING)
        <= shared.telemetry[name].cpi(TIMING) + 1e-9
        for name in hot
    )
    print(
        "every non-polluter tenant is at least as fast under the "
        f"broker as under the shared cache -> {protected}"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Column caching down the hierarchy (the paper's forward pointer).

Section 2.2 designed the tint indirection to hide "the number of levels
of the memory hierarchy" from software.  This example runs a hot
working set against a streaming scan on a two-level system where one
tint resolves to a different column bit vector at each level, and shows
that per-level isolation protects the hot set in *both* caches.

Run:  python examples/two_level_hierarchy.py
"""

from repro.cache import CacheGeometry
from repro.cache.hierarchy import (
    HierarchyTintTable,
    LevelMasks,
    TwoLevelCacheSystem,
)
from repro.utils.bitvector import ColumnMask
from repro.utils.tables import format_table


def run_scenario(isolate: bool):
    system = TwoLevelCacheSystem(
        l1_geometry=CacheGeometry(line_size=16, sets=32, columns=2),  # 1 KB
        l2_geometry=CacheGeometry(line_size=16, sets=128, columns=4),  # 8 KB
        l2_hit_cycles=6,
        memory_cycles=40,
    )
    tints = HierarchyTintTable(l1_columns=2, l2_columns=4)
    if isolate:
        tints.define(
            "hot",
            LevelMasks(l1=ColumnMask.of(0, width=2),
                       l2=ColumnMask.of(0, width=4)),
        )
        tints.define(
            "stream",
            LevelMasks(l1=ColumnMask.of(1, width=2),
                       l2=ColumnMask.of(1, 2, 3, width=4)),
        )
        hot_masks = tints.masks_of("hot")
        stream_masks = tints.masks_of("stream")
    else:
        hot_masks = stream_masks = tints.masks_of("red")

    hot_lines = [0x0 + line * 16 for line in range(24)]  # 384 B hot set
    cycles = 0
    hot_accesses = 0
    hot_l1_hits = 0
    for round_number in range(64):
        for address in hot_lines:
            outcome = system.access(address, masks=hot_masks)
            cycles += outcome.cycles
            hot_accesses += 1
            hot_l1_hits += outcome.l1_hit
        # 2 KB of streaming in between (a DMA buffer scan).
        base = 0x100000 + round_number * 2048
        for line in range(128):
            outcome = system.access(base + line * 16, masks=stream_masks)
            cycles += outcome.cycles
    return cycles, hot_l1_hits / hot_accesses


def main() -> None:
    rows = []
    for isolate in (False, True):
        cycles, hot_hit_rate = run_scenario(isolate)
        rows.append(
            [
                "per-level tints" if isolate else "shared (no tints)",
                cycles,
                f"{hot_hit_rate:.1%}",
            ]
        )
    print(
        format_table(
            ["configuration", "total cycles", "hot-set L1 hit rate"],
            rows,
            title="hot 384B set vs 128KB of streaming, L1 1KB / L2 8KB",
        )
    )
    print()
    print("One tint, two bit vectors: the hot set keeps an L1 column AND")
    print("an L2 column, so the stream never disturbs it at either level.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""MPEG kernel partitioning: the paper's Figure 4 study, interactively.

For each decoder routine (dequant / plus / idct) this sweeps the 2 KB
on-chip memory between scratchpad and cache, re-running the data-layout
algorithm per partition, and prints the cycle counts plus the layout
chosen at each routine's best point.

Run:  python examples/mpeg_partitioning.py
"""

from repro.baselines.static_partition import (
    best_partition,
    sweep_static_partitions,
)
from repro.sim.config import EMBEDDED_TIMING
from repro.utils.tables import format_table
from repro.workloads.mpeg import DequantRoutine, IdctRoutine, PlusRoutine


def main() -> None:
    rows = []
    best_layouts = {}
    for factory in (DequantRoutine, PlusRoutine, IdctRoutine):
        run = factory().record()
        points = sweep_static_partitions(
            run,
            columns=4,
            column_bytes=512,
            timing=EMBEDDED_TIMING,
        )
        best = best_partition(points)
        best_layouts[run.name] = best
        rows.append(
            [run.name]
            + [point.cycles for point in points]
            + [f"{best.cache_columns} cache cols"]
        )

    print(
        format_table(
            ["routine", "cache=0", "cache=1", "cache=2", "cache=3",
             "cache=4", "best"],
            rows,
            title="cycles per partition (2KB on-chip, 4 columns)",
        )
    )
    print()
    print("Per-routine optima differ — the paper's core argument for")
    print("dynamic repartitioning.  Best layouts:")
    for name, point in best_layouts.items():
        print()
        print(point.assignment.describe())


if __name__ == "__main__":
    main()
